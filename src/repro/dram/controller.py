"""Host-side in-order memory controller over one or more pseudo-channels.

The paper's execution model assumes the host DRAM controller issues all
commands in program order ("disabling out-of-order command issues", §IV-B).
:class:`MemoryController` therefore walks a command trace front to back,
asking each channel's scheduler for the earliest legal issue cycle. Channels
are independent: a trace that spreads work over channels gets channel-level
parallelism for free, exactly as in the hardware, because each channel
scheduler keeps its own clock and the result is the max over channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..errors import TimingError
from .. import obs
from .channel import BANKS_PER_CHANNEL, ChannelScheduler
from .commands import Command, CommandType, TraceEntry, as_run
from .power import EnergyModel, EnergyParams, EnergyReport
from .timing import TimingParams


@dataclass
class ScheduleResult:
    """Outcome of running a command trace through the controller."""

    total_cycles: int
    per_channel_cycles: Dict[int, int]
    counts: Dict[CommandType, int]
    command_total: int
    refreshes: int
    energy: Optional[EnergyReport] = None
    #: Optional cycle annotations per tag (sum of inter-command gaps
    #: attributed to commands carrying that tag).
    tag_cycles: Dict[str, int] = field(default_factory=dict)
    #: Protocol violations found by the opt-in independent checker
    #: (``validate_protocol=True``); always empty otherwise.
    violations: list = field(default_factory=list)
    #: Per-channel scheduler summaries (cycles, command mix, row
    #: hits/misses, refreshes), keyed by channel id.
    per_channel_stats: Dict[int, Dict[str, int]] = field(
        default_factory=dict)

    def seconds(self, timing: TimingParams) -> float:
        """Schedule length in seconds."""
        return self.total_cycles * timing.tck_ns * 1e-9

    @property
    def row_commands(self) -> int:
        return sum(n for k, n in self.counts.items() if k.is_row)

    @property
    def column_commands(self) -> int:
        return sum(n for k, n in self.counts.items() if k.is_column)

    @property
    def activations(self) -> int:
        """Row activations issued (single-bank and broadcast)."""
        return (self.counts.get(CommandType.ACT, 0)
                + self.counts.get(CommandType.ACT_AB, 0))

    @property
    def row_buffer_locality(self) -> float:
        """Column accesses per activation — how well the schedule reuses
        open rows. Streaming kernels should approach the row's beat
        capacity; row-thrashing schedules approach 1.0."""
        acts = self.activations
        return self.column_commands / acts if acts else 0.0

    @property
    def bus_utilisation(self) -> float:
        """Fraction of schedule cycles carrying a column command —
        an upper bound on achieved data-bus utilisation."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.column_commands / self.total_cycles)

    @property
    def row_misses(self) -> int:
        """Column accesses that needed a fresh activation (the ACTs)."""
        return self.activations

    @property
    def row_hits(self) -> int:
        """Column accesses served from an already-open row."""
        return max(self.column_commands - self.activations, 0)


class MemoryController:
    """FCFS, in-order command issue across the cube's pseudo-channels."""

    def __init__(self, timing: TimingParams = TimingParams(),
                 num_channels: int = 16,
                 enable_refresh: bool = True,
                 energy_params: Optional[EnergyParams] = None,
                 validate_protocol: bool = False,
                 banks_per_channel: int = BANKS_PER_CHANNEL) -> None:
        if num_channels <= 0:
            raise TimingError("need at least one channel")
        if banks_per_channel <= 0:
            raise TimingError("need at least one bank per channel")
        self.timing = timing
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self.enable_refresh = enable_refresh
        self.validate_protocol = validate_protocol
        self._energy_model = EnergyModel(energy_params or EnergyParams(),
                                         timing)

    def run(self, trace: Iterable[TraceEntry],
            with_energy: bool = False,
            host_column_traffic: int = 0,
            alu_operations: int = 0,
            precision: str = "fp64",
            collector=None) -> ScheduleResult:
        """Schedule *trace* and return cycle counts (and optionally energy).

        *trace* may mix plain :class:`Command` entries with
        :class:`~repro.dram.commands.CommandRun` batches; a run prices
        exactly like its expansion (same cycles, counters and tag
        attributions) but in O(1) per run instead of O(count).

        ``host_column_traffic``, ``alu_operations`` and ``precision`` feed
        the energy model only; they describe how much of the column traffic
        crossed the external interface and how much PU compute the trace's
        PIM phases performed.

        ``collector`` (e.g. an
        :class:`repro.obs.attrib.AttributionCollector`) is a passive
        observer whose ``observe(command, count, last, refreshes)`` hook
        sees every entry's issue outcome as it prices — the attribution
        engine rides the one scheduling pass instead of re-running it.
        Issue decisions are never affected.
        """
        channels: Dict[int, ChannelScheduler] = {}
        counts: Dict[CommandType, int] = {k: 0 for k in CommandType}
        tag_cycles: Dict[str, int] = {}
        last_cycle: Dict[int, int] = {}
        total = 0
        for entry in trace:
            command, count = as_run(entry)
            if command.channel >= self.num_channels:
                raise TimingError(
                    f"command channel {command.channel} exceeds "
                    f"{self.num_channels} channels")
            if command.bank >= self.banks_per_channel:
                raise TimingError(
                    f"bank {command.bank} outside the channel")
            sched = channels.get(command.channel)
            if sched is None:
                sched = ChannelScheduler(
                    self.timing, self.enable_refresh,
                    validate_protocol=self.validate_protocol,
                    channel=command.channel,
                    banks_per_channel=self.banks_per_channel)
                channels[command.channel] = sched
            if count == 1:
                first = last = sched.issue(command)
            else:
                first, last = sched.issue_run(command, count)
            if command.tag is not None:
                # Per-command attributions sum the positive gaps: the gap
                # to the run's first command plus the fixed spacings
                # between its successors (all positive), i.e. last-first.
                gap = first - last_cycle.get(command.channel, 0)
                tag_cycles[command.tag] = (tag_cycles.get(command.tag, 0)
                                           + max(gap, 0) + (last - first))
            last_cycle[command.channel] = last
            counts[command.kind] += count
            total += count
            if collector is not None:
                collector.observe(command, count, last,
                                  sched.refreshes_performed)

        per_channel = {ch: sched.now for ch, sched in channels.items()}
        total_cycles = max(per_channel.values()) if per_channel else 0
        refreshes = sum(s.refreshes_performed for s in channels.values())
        counts[CommandType.REF] += refreshes
        violations = [v for ch in sorted(channels)
                      for v in channels[ch].protocol_violations]
        per_channel_stats = {ch: channels[ch].stats()
                             for ch in sorted(channels)}
        result = ScheduleResult(total_cycles=total_cycles,
                                per_channel_cycles=per_channel,
                                counts=counts, command_total=total,
                                refreshes=refreshes, tag_cycles=tag_cycles,
                                violations=violations,
                                per_channel_stats=per_channel_stats)
        if with_energy:
            report = self._energy_model.command_energy(
                counts, banks_per_channel=self.banks_per_channel,
                host_column_traffic=host_column_traffic)
            self._energy_model.add_background(
                report, total_cycles,
                num_channels=max(len(channels), 1))
            if alu_operations:
                self._energy_model.add_alu(report, alu_operations, precision)
            result.energy = report
        if obs.enabled():
            self._obs_emit(result)
        return result

    @staticmethod
    def _obs_emit(result: ScheduleResult) -> None:
        """Feed the schedule's command mix and locality counters to obs."""
        for kind, n in result.counts.items():
            if n:
                obs.add_counter(f"dram.cmd.{kind.name}", n)
        obs.add_counter("dram.commands", result.command_total)
        obs.add_counter("dram.cycles", result.total_cycles, sample=True)
        obs.add_counter("dram.refreshes", result.refreshes)
        obs.add_counter("dram.row_hits", result.row_hits)
        obs.add_counter("dram.row_misses", result.row_misses)
        for tag, cycles in result.tag_cycles.items():
            obs.add_counter(f"dram.tag_cycles.{tag}", cycles)
        if result.per_channel_stats:
            width = max(result.per_channel_stats) + 1

            def series(metric) -> list:
                values = [0] * width
                for ch, stats in result.per_channel_stats.items():
                    values[ch] = metric(stats)
                return values

            # Busy = cycles carrying a column command (data-bus work);
            # idle = this channel's slack against the schedule's critical
            # path — the lock-step cost of channel imbalance.
            obs.add_bank_counter("channel.busy",
                                 series(lambda s: s["column_commands"]))
            obs.add_bank_counter(
                "channel.idle",
                series(lambda s: max(
                    result.total_cycles - s["column_commands"], 0)))
            obs.add_bank_counter("channel.cycles",
                                 series(lambda s: s["cycles"]))
            obs.add_bank_counter("channel.commands",
                                 series(lambda s: s["commands"]))
            obs.add_bank_counter("channel.columns",
                                 series(lambda s: s["column_commands"]))
            obs.add_bank_counter("channel.row_hits",
                                 series(lambda s: s["row_hits"]))
            obs.add_bank_counter("channel.row_misses",
                                 series(lambda s: s["row_misses"]))
            obs.add_bank_counter("channel.refreshes",
                                 series(lambda s: s["refreshes"]))


def count_commands(trace: Iterable[TraceEntry]) -> Dict[CommandType, int]:
    """Tally a trace without scheduling it (used for Figure 3)."""
    counts: Dict[CommandType, int] = {k: 0 for k in CommandType}
    for entry in trace:
        command, count = as_run(entry)
        counts[command.kind] += count
    return counts
