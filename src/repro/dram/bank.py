"""Per-bank DRAM protocol state.

Each bank tracks its open row and the earliest cycle at which each command
class may legally target it. The channel scheduler
(:mod:`repro.dram.channel`) combines these per-bank windows with bus- and
group-level constraints.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TimingError
from .timing import TimingParams


class BankState:
    """Timing and row state of a single DRAM bank."""

    __slots__ = ("timing", "open_row", "act_ready", "rd_ready", "wr_ready",
                 "pre_ready")

    def __init__(self, timing: TimingParams) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.act_ready = 0   # earliest ACT issue cycle
        self.rd_ready = 0    # earliest RD issue cycle (row must be open)
        self.wr_ready = 0
        self.pre_ready = 0

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def earliest_act(self) -> int:
        if self.is_open:
            raise TimingError("ACT issued to a bank with an open row")
        return self.act_ready

    def earliest_column(self, row: int, write: bool) -> int:
        if self.open_row is None:
            raise TimingError("column command issued to a precharged bank")
        if self.open_row != row:
            raise TimingError(
                f"column command targets row {row} but row "
                f"{self.open_row} is open")
        return self.wr_ready if write else self.rd_ready

    def earliest_pre(self) -> int:
        if not self.is_open:
            raise TimingError("PRE issued to an already precharged bank")
        return self.pre_ready

    # ------------------------------------------------------------------
    def apply_act(self, cycle: int, row: int) -> None:
        """Record an ACT issued at *cycle* opening *row*."""
        t = self.timing
        self.open_row = row
        self.rd_ready = cycle + t.trcd
        self.wr_ready = cycle + t.trcd
        self.pre_ready = cycle + t.tras
        # tRC lower-bounds the next ACT even if PRE comes early.
        self.act_ready = max(self.act_ready, cycle + t.trc)

    def apply_read(self, cycle: int) -> None:
        """Record a RD issued at *cycle* (burst occupies the data bus)."""
        t = self.timing
        self.pre_ready = max(self.pre_ready, cycle + t.trtp)
        self.rd_ready = max(self.rd_ready, cycle + t.burst_cycles)
        self.wr_ready = max(self.wr_ready, cycle + t.read_to_write)

    def apply_write(self, cycle: int) -> None:
        """Record a WR issued at *cycle*."""
        t = self.timing
        self.pre_ready = max(self.pre_ready, cycle + t.write_recovery)
        self.wr_ready = max(self.wr_ready, cycle + t.burst_cycles)
        self.rd_ready = max(self.rd_ready, cycle + t.write_to_read)

    def apply_pre(self, cycle: int) -> None:
        """Record a PRE issued at *cycle*."""
        self.open_row = None
        self.act_ready = max(self.act_ready, cycle + self.timing.trp)

    def block_until(self, cycle: int) -> None:
        """Push every readiness window to *cycle* (used by refresh)."""
        self.act_ready = max(self.act_ready, cycle)
        self.rd_ready = max(self.rd_ready, cycle)
        self.wr_ready = max(self.wr_ready, cycle)
        self.pre_ready = max(self.pre_ready, cycle)
