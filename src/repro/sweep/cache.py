"""Content-addressed on-disk cache for expensive sweep artifacts.

Every sweep job walks the same pipeline — partition/compress the matrix,
distribute tiles, synthesise a command trace, schedule it through the FCFS
controller — and most of those stages depend only on the matrix data and a
handful of parameters. :class:`ArtifactCache` keys each intermediate on a
SHA-256 digest of exactly those inputs (matrix arrays, kernel parameters,
timing configuration), so re-running a sweep, or sweeping a new parameter
that leaves an earlier stage unchanged, reuses the stored artifact instead
of recomputing it.

Artifacts are pickled to ``<root>/<kind>/<digest>.pkl`` where *root*
resolves, in order, to: an explicit path, the ``PSYNCPIM_CACHE_DIR``
environment variable, or ``~/.cache/psyncpim``. Every file carries a
magic tag plus the SHA-256 of its pickle payload, verified on load:
a corrupt, truncated or bit-flipped entry fails the content check and
is treated as a miss and overwritten, never silently unpickled. Writes
are atomic (temp file + rename) so concurrent sweep workers can share
one cache directory. A disabled cache (``enabled=False``, the
``--no-cache`` escape hatch) computes everything and never touches the
filesystem — results are bitwise-identical either way, only the time to
produce them changes.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..formats import COOMatrix

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "PSYNCPIM_CACHE_DIR"

#: Bump to invalidate every previously stored artifact (layout changes).
#: v2: traces are emitted with CommandRun batching — regenerating stored
#: per-command traces lets cached sweeps use the closed-form pricing path.
#: v3: SubMatrix/PartitionPlan pickle with cached per-tile statistics
#: (touched_rows, tile_nnz/x_lengths arrays) from the vectorized planner.
#: v4: files carry a magic + SHA-256 integrity header; pre-v4 headerless
#: pickles would fail the check anyway, but the bump keeps them from
#: accumulating as permanent misses under live keys.
#: v5: executions gained channel-sharding fields (num_channels,
#: channel_execs) and sweep keys a channels component; pre-v5 pickles
#: lack the new dataclass fields.
#: v6: sweep keys gained a partitioning-strategy component and a "tune"
#: artifact kind; HBM2Config grew pseudo_channels_per_channel, which
#: changes every config-keyed digest via the dataclass field walk.
CACHE_VERSION = 6

#: On-disk artifact header: magic, then the SHA-256 of the payload.
_MAGIC = b"PSPC1\n"

_MISS = object()


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$PSYNCPIM_CACHE_DIR`` or ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "psyncpim"


# ----------------------------------------------------------------------
# stable content digests
# ----------------------------------------------------------------------
def _feed(h, obj: Any) -> None:
    """Feed *obj* into hash *h* with a stable, type-tagged encoding.

    Supports the vocabulary sweep keys are built from: primitives,
    numpy arrays, enums, (nested) dataclasses, COO matrices and plain
    containers. Unknown types raise so a key can never silently collapse
    two distinct inputs.
    """
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B1" if obj else b"\x00B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"\x00I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"\x00F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj)
    elif isinstance(obj, np.ndarray):
        h.update(b"\x00A" + obj.dtype.str.encode() + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, enum.Enum):
        h.update(b"\x00E" + type(obj).__name__.encode() + obj.name.encode())
    elif isinstance(obj, COOMatrix):
        h.update(b"\x00M" + str(obj.shape).encode())
        for arr in (obj.rows, obj.cols, obj.vals):
            _feed(h, arr)
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"\x00D" + type(obj).__qualname__.encode())
        for f in dataclass_fields(obj):
            h.update(f.name.encode())
            _feed(h, getattr(obj, f.name))
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00L" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(b"\x00G" + str(len(obj)).encode())
        for key in sorted(obj, key=str):
            _feed(h, str(key))
            _feed(h, obj[key])
    elif isinstance(obj, (set, frozenset)):
        _feed(h, sorted(obj, key=str))
    else:
        raise TypeError(f"cannot build a stable cache key from "
                        f"{type(obj).__name__!r}")


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of *parts* under the stable encoding."""
    h = hashlib.sha256()
    _feed(h, CACHE_VERSION)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


def matrix_digest(matrix: COOMatrix) -> str:
    """Content digest of one sparse matrix (shape + coordinate arrays)."""
    return stable_digest(matrix)


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class ArtifactCache:
    """Content-addressed pickle store with per-kind hit/miss counters."""

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 enabled: bool = True) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.enabled = enabled
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    # -- keys ----------------------------------------------------------
    def key(self, *parts: Any) -> str:
        """Digest arbitrary key parts (see :func:`stable_digest`)."""
        return stable_digest(*parts)

    def path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    # -- counters ------------------------------------------------------
    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    def counters(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(hits, misses)`` pairs."""
        kinds = sorted(set(self.hits) | set(self.misses))
        return {kind: (self.hits.get(kind, 0), self.misses.get(kind, 0))
                for kind in kinds}

    # -- storage -------------------------------------------------------
    def load(self, kind: str, key: str) -> Any:
        """Return the stored artifact or the module-private miss marker.

        The payload's SHA-256 must match the stored header: a truncated,
        bit-flipped or pre-header file is a miss, never a silent
        unpickle of corrupt bytes.
        """
        if not self.enabled:
            return _MISS
        path = self.path(kind, key)
        try:
            data = path.read_bytes()
        except OSError:
            return _MISS
        header_len = len(_MAGIC) + hashlib.sha256().digest_size
        if len(data) < header_len or not data.startswith(_MAGIC):
            return _MISS
        digest = data[len(_MAGIC):header_len]
        payload = data[header_len:]
        if hashlib.sha256(payload).digest() != digest:
            return _MISS
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ValueError):
            return _MISS

    def store(self, kind: str, key: str, value: Any) -> None:
        """Atomically persist *value* (no-op when disabled)."""
        if not self.enabled:
            return
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(hashlib.sha256(payload).digest())
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_compute(self, kind: str, key: str,
                       compute: Callable[[], Any]) -> Any:
        """Fetch ``(kind, key)`` or compute, store and count a miss."""
        value = self.load(kind, key)
        if value is not _MISS:
            self.hits[kind] = self.hits.get(kind, 0) + 1
            return value
        self.misses[kind] = self.misses.get(kind, 0) + 1
        value = compute()
        self.store(kind, key, value)
        return value

    def clear(self) -> int:
        """Delete every stored artifact under the root; returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"ArtifactCache({str(self.root)!r}, {state}, "
                f"hits={self.hit_count}, misses={self.miss_count})")
