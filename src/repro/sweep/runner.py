"""Parallel sweep execution of (matrix, kernel, config) jobs.

A :class:`SweepJob` names everything one experiment run needs — a Table IX
matrix (regenerated deterministically inside the worker), the kernel, and
the configuration knobs the paper sweeps. :func:`run_sweep` fans a job list
out over ``concurrent.futures.ProcessPoolExecutor`` workers; each worker
walks the standard pipeline (partition/compress -> distribute -> trace ->
FCFS schedule) through the content-addressed :class:`ArtifactCache`, so
repeated sweeps, and sweeps that share intermediate stages, skip the
expensive recomputation entirely.

Caching never changes results: a job's :class:`PerfReport` is
bitwise-identical whether its artifacts were computed or loaded, because
every cache key covers the full input content (matrix arrays, kernel
parameters, timing configuration).
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (Any, Dict, Iterable, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..analysis.report import JobRecord, SweepResult
from .. import obs
from ..config import (SystemConfig, default_system, gddr6_aim_system,
                      resolve_attrib, resolve_batch, resolve_channels,
                      resolve_rhs, resolve_strategy)
from ..core.spmm import as_spmm_execution
from ..core.spmv import plan_spmv
from ..core.sptrsv import ildu, level_schedule, run_sptrsv
from ..core.timing import PerfReport, price_trace
from ..core.trace import (TraceParams, spmm_ab_trace, spmm_channels_trace,
                          spmm_pb_trace, spmv_ab_trace,
                          spmv_channels_trace, spmv_pb_trace,
                          sptrsv_ab_trace, sptrsv_channels_trace)
from ..errors import ExecutionError
from ..formats import (COOMatrix, generate, matrix_spec,
                       read_matrix_market, suite_names)
from .cache import ArtifactCache, default_cache_dir, matrix_digest

#: Environment variables the benchmark/CI harnesses steer sweeps with.
SCALE_ENV = "PSYNCPIM_SCALE"
LEGACY_SCALE_ENV = "REPRO_BENCH_SCALE"
WORKERS_ENV = "PSYNCPIM_WORKERS"

#: Default matrix dimension scale (minutes on a laptop; 1.0 = paper size).
DEFAULT_SCALE = 0.05


def resolve_bench_scale(environ: Optional[Mapping[str, str]] = None,
                        default: float = DEFAULT_SCALE) -> float:
    """Benchmark matrix scale: ``PSYNCPIM_SCALE``, then the legacy
    ``REPRO_BENCH_SCALE``, then *default*.

    CI shrinks whole suites (e.g. Table IX) through this single knob
    without touching code.
    """
    env = os.environ if environ is None else environ
    for name in (SCALE_ENV, LEGACY_SCALE_ENV):
        raw = env.get(name)
        if raw is None or raw == "":
            continue
        try:
            scale = float(raw)
        except ValueError:
            raise ExecutionError(f"{name} must be a number, got {raw!r}")
        if scale <= 0:
            raise ExecutionError(f"{name} must be positive, got {raw!r}")
        return scale
    return default


def resolve_workers(environ: Optional[Mapping[str, str]] = None,
                    default: Optional[int] = None) -> int:
    """Worker-process count: ``PSYNCPIM_WORKERS`` or min(4, cores)."""
    env = os.environ if environ is None else environ
    raw = env.get(WORKERS_ENV)
    if raw not in (None, ""):
        try:
            workers = int(raw)
        except ValueError:
            raise ExecutionError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}")
        return max(workers, 1)
    if default is not None:
        return max(int(default), 1)
    return max(1, min(4, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# job description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepJob:
    """One (matrix, kernel, config) experiment of a sweep.

    ``matrix`` is a Table IX name (regenerated at ``scale`` inside the
    worker) or a ``.mtx`` file path. ``kernel`` selects the pipeline:
    ``"spmv"``, ``"spmm"`` and ``"sptrsv"`` produce a
    :class:`PerfReport`; ``"suite"`` only materialises the matrix
    (Table IX regeneration).
    """

    kernel: str = "spmv"
    matrix: str = "poisson3Da"
    scale: float = DEFAULT_SCALE
    precision: str = "fp64"
    num_cubes: int = 1
    platform: str = "hbm2"          # "hbm2" or "gddr6"
    mode: str = "ab"                # SpMV: all-bank or per-bank pricing
    compress: bool = True
    policy: str = "paper"
    matrix_format: str = "coo"
    lower: bool = True              # SpTRSV: which triangular factor
    seed: int = 0
    with_energy: bool = False
    #: Channel-sharded execution width (None = representative channel;
    #: resolved through :func:`repro.config.resolve_channels`).
    channels: Optional[int] = None
    #: Partitioning strategy (None resolves through
    #: :func:`repro.config.resolve_strategy`; "auto" tunes per matrix).
    strategy: Optional[str] = None
    #: SpMM right-hand-side width (None resolves through
    #: :func:`repro.config.resolve_rhs` / ``PSYNCPIM_RHS``; other
    #: kernels ignore it).
    rhs: Optional[int] = None
    #: Cycle attribution: build a :class:`repro.obs.report.RunReport`
    #: alongside the PerfReport (None resolves through
    #: :func:`repro.config.resolve_attrib` / ``PSYNCPIM_ATTRIB``).
    attrib: Optional[bool] = None
    label: str = ""

    def resolved_label(self) -> str:
        """The job's display/lookup label (stable and distinguishing)."""
        if self.label:
            return self.label
        parts = [f"{self.kernel}:{self.matrix}"]
        if self.kernel == "sptrsv":
            parts.append("lower" if self.lower else "upper")
        if self.mode != "ab":
            parts.append(self.mode)
        if self.precision != "fp64":
            parts.append(self.precision)
        if self.num_cubes != 1:
            parts.append(f"x{self.num_cubes}")
        if self.platform != "hbm2":
            parts.append(self.platform)
        if self.channels is not None:
            parts.append(f"{self.channels}ch")
        if self.strategy not in (None, "paper"):
            parts.append(self.strategy)
        if self.kernel == "spmm":
            parts.append(f"k{resolve_rhs(self.rhs)}")
        return "/".join(parts)

    def system(self) -> SystemConfig:
        if self.platform == "hbm2":
            return default_system(self.num_cubes)
        if self.platform == "gddr6":
            return gddr6_aim_system(self.num_cubes)
        raise ExecutionError(f"unknown sweep platform {self.platform!r}")

    def load_matrix(self) -> COOMatrix:
        if self.matrix.endswith(".mtx"):
            return read_matrix_market(self.matrix)
        return generate(self.matrix, scale=self.scale)


# ----------------------------------------------------------------------
# kernel pipelines (run inside the worker, through the artifact cache)
# ----------------------------------------------------------------------
def _spmv_pipeline(job: SweepJob, cache: ArtifactCache,
                   batch: str = "off",
                   ) -> Tuple[Optional[PerfReport], Dict[str, Any]]:
    matrix = job.load_matrix()
    config = job.system()
    params = TraceParams()
    mkey = matrix_digest(matrix)
    channels = resolve_channels(job.channels)
    strategy = resolve_strategy(job.strategy)

    plan_key = cache.key("spmv-plan", mkey, config, job.precision,
                         job.compress, job.policy, channels, strategy)
    plan, assignment = cache.get_or_compute(
        "plan", plan_key,
        lambda: plan_spmv(matrix, config, precision=job.precision,
                          compress=job.compress, policy=job.policy,
                          matrix_format=job.matrix_format,
                          validate=False, channels=channels,
                          strategy=strategy, tuner_cache=cache)[:2])
    _, _, execution = plan_spmv(matrix, config, precision=job.precision,
                                compress=job.compress, policy=job.policy,
                                matrix_format=job.matrix_format,
                                plan=plan, assignment=assignment,
                                validate=False, channels=channels)

    trace_key = cache.key("spmv-trace", execution, config, params, job.mode)
    schedule_key = cache.key("spmv-schedule", trace_key, job.with_energy)

    def compute_report() -> PerfReport:
        if execution.num_channels is not None:
            def synthesise(execution, config, params):
                return spmv_channels_trace(execution, config, params,
                                           mode=job.mode)
        else:
            synthesise = (spmv_ab_trace if job.mode == "ab"
                          else spmv_pb_trace)
        trace = cache.get_or_compute(
            "trace", trace_key,
            lambda: synthesise(execution, config, params))
        return price_trace(trace, config, with_energy=job.with_energy,
                           alu_operations=2 * execution.total_elements,
                           precision=job.precision,
                           channels=execution.num_channels)

    report = cache.get_or_compute("schedule", schedule_key, compute_report)
    extras = {
        "rows": matrix.shape[0],
        "cols": matrix.shape[1],
        "nnz": matrix.nnz,
        "tiles": len(plan.tiles),
        "rounds": execution.num_rounds,
        "banks_used": execution.banks_used,
        "imbalance": execution.imbalance,
    }
    if channels is not None:
        extras["channels"] = channels
    if strategy != "paper":
        extras["strategy"] = strategy
    if resolve_attrib(job.attrib):
        from ..obs.attrib import ATTRIB_VERSION, attribute_spmv
        from ..obs.report import build_run_report

        def compute_attrib():
            attribution, perf = attribute_spmv(
                execution, config, mode=job.mode,
                with_energy=job.with_energy)
            return build_run_report(
                attribution, perf, label=job.resolved_label(),
                kind="spmv", matrix=job.matrix, mode=job.mode,
                channels=channels, strategy=strategy,
                precision=job.precision, config=config,
                alu_operations=2 * execution.total_elements)

        extras["_attrib"] = cache.get_or_compute(
            "attrib", cache.key("spmv-attrib", schedule_key,
                                ATTRIB_VERSION), compute_attrib)
    return report, extras


def _spmm_pipeline(job: SweepJob, cache: ArtifactCache,
                   batch: str = "off",
                   ) -> Tuple[Optional[PerfReport], Dict[str, Any]]:
    """The SpMM pipeline: the SpMV plan, widened to ``rhs`` columns.

    The plan/assignment stage shares the ``spmv-plan`` cache entries
    (the layout is identical, so an SpMV sweep warms an SpMM sweep and
    vice versa); only the trace/schedule/attrib stages key on the
    right-hand-side width.
    """
    matrix = job.load_matrix()
    config = job.system()
    params = TraceParams()
    mkey = matrix_digest(matrix)
    channels = resolve_channels(job.channels)
    strategy = resolve_strategy(job.strategy)
    num_rhs = resolve_rhs(job.rhs)

    plan_key = cache.key("spmv-plan", mkey, config, job.precision,
                         job.compress, job.policy, channels, strategy)
    plan, assignment = cache.get_or_compute(
        "plan", plan_key,
        lambda: plan_spmv(matrix, config, precision=job.precision,
                          compress=job.compress, policy=job.policy,
                          matrix_format=job.matrix_format,
                          validate=False, channels=channels,
                          strategy=strategy, tuner_cache=cache)[:2])
    _, _, execution = plan_spmv(matrix, config, precision=job.precision,
                                compress=job.compress, policy=job.policy,
                                matrix_format=job.matrix_format,
                                plan=plan, assignment=assignment,
                                validate=False, channels=channels)
    execution = as_spmm_execution(execution, num_rhs)

    trace_key = cache.key("spmm-trace", execution, config, params,
                          job.mode, num_rhs)
    schedule_key = cache.key("spmm-schedule", trace_key, job.with_energy)

    def compute_report() -> PerfReport:
        if execution.num_channels is not None:
            def synthesise(execution, config, params):
                return spmm_channels_trace(execution, config, params,
                                           mode=job.mode)
        else:
            synthesise = (spmm_ab_trace if job.mode == "ab"
                          else spmm_pb_trace)
        trace = cache.get_or_compute(
            "trace", trace_key,
            lambda: synthesise(execution, config, params))
        return price_trace(
            trace, config, with_energy=job.with_energy,
            alu_operations=2 * execution.total_elements * num_rhs,
            precision=job.precision, channels=execution.num_channels)

    report = cache.get_or_compute("schedule", schedule_key, compute_report)
    extras = {
        "rows": matrix.shape[0],
        "cols": matrix.shape[1],
        "nnz": matrix.nnz,
        "tiles": len(plan.tiles),
        "rounds": execution.num_rounds,
        "banks_used": execution.banks_used,
        "imbalance": execution.imbalance,
        "rhs": num_rhs,
        "cycles_per_rhs": report.cycles / num_rhs,
    }
    if channels is not None:
        extras["channels"] = channels
    if strategy != "paper":
        extras["strategy"] = strategy
    if resolve_attrib(job.attrib):
        from ..obs.attrib import ATTRIB_VERSION, attribute_spmm
        from ..obs.report import build_run_report

        def compute_attrib():
            attribution, perf = attribute_spmm(
                execution, config, mode=job.mode,
                with_energy=job.with_energy)
            return build_run_report(
                attribution, perf, label=job.resolved_label(),
                kind="spmm", matrix=job.matrix, mode=job.mode,
                channels=channels, strategy=strategy,
                precision=job.precision, config=config,
                alu_operations=2 * execution.total_elements * num_rhs)

        extras["_attrib"] = cache.get_or_compute(
            "attrib", cache.key("spmm-attrib", schedule_key,
                                ATTRIB_VERSION), compute_attrib)
    return report, extras


def _sptrsv_pipeline(job: SweepJob, cache: ArtifactCache,
                     batch: str = "off",
                     ) -> Tuple[Optional[PerfReport], Dict[str, Any]]:
    matrix = job.load_matrix()
    config = job.system()
    params = TraceParams()
    mkey = matrix_digest(matrix)

    factors = cache.get_or_compute("factors", cache.key("ildu", mkey),
                                   lambda: ildu(matrix))
    tri = factors.lower if job.lower else factors.upper
    n = tri.shape[0]
    b = np.random.default_rng(job.seed).random(n)
    channels = resolve_channels(job.channels)
    strategy = resolve_strategy(job.strategy)

    solve_key = cache.key("sptrsv-solve", mkey, job.lower, config,
                          job.precision, job.seed, channels, strategy)

    def compute_solve():
        result = run_sptrsv(tri, b, config, lower=job.lower,
                            precision=job.precision, channels=channels,
                            strategy=strategy)
        levels = len(level_schedule(tri, lower=job.lower))
        return result.execution, result.x, levels

    execution, x, levels = cache.get_or_compute("solve", solve_key,
                                                compute_solve)
    residual = float(np.abs(tri.matvec(x) - b).max())

    trace_key = cache.key("sptrsv-trace", solve_key, params)
    schedule_key = cache.key("sptrsv-schedule", trace_key, job.with_energy)

    def compute_report() -> PerfReport:
        if execution.num_channels is not None:
            def synthesise():
                return sptrsv_channels_trace(execution, config, params)
        else:
            def synthesise():
                return sptrsv_ab_trace(execution, config, params)
        trace = cache.get_or_compute("trace", trace_key, synthesise)
        return price_trace(trace, config, with_energy=job.with_energy,
                           alu_operations=2 * execution.total_elements,
                           precision=job.precision,
                           channels=execution.num_channels)

    report = cache.get_or_compute("schedule", schedule_key, compute_report)
    extras = {
        "dimension": n,
        "nnz": tri.nnz,
        "levels": levels,
        "residual": residual,
        "factor": "lower" if job.lower else "upper",
    }
    if channels is not None:
        extras["channels"] = channels
    if strategy != "paper":
        extras["strategy"] = strategy
    if resolve_attrib(job.attrib):
        from ..obs.attrib import ATTRIB_VERSION, attribute_sptrsv
        from ..obs.report import build_run_report

        def compute_attrib():
            attribution, perf = attribute_sptrsv(
                execution, config, with_energy=job.with_energy)
            return build_run_report(
                attribution, perf, label=job.resolved_label(),
                kind="sptrsv", matrix=job.matrix,
                channels=channels, strategy=strategy,
                precision=job.precision, config=config,
                alu_operations=2 * execution.total_elements)

        extras["_attrib"] = cache.get_or_compute(
            "attrib", cache.key("sptrsv-attrib", schedule_key,
                                ATTRIB_VERSION), compute_attrib)
    return report, extras


def _suite_pipeline(job: SweepJob, cache: ArtifactCache,
                    batch: str = "off",
                    ) -> Tuple[Optional[PerfReport], Dict[str, Any]]:
    key = cache.key("suite-matrix", job.matrix, job.scale)
    matrix = cache.get_or_compute("matrix", key, job.load_matrix)
    extras: Dict[str, Any] = {
        "matrix": matrix,
        "rows": matrix.shape[0],
        "cols": matrix.shape[1],
        "nnz": matrix.nnz,
        "density": matrix.density,
    }
    if not job.matrix.endswith(".mtx"):
        spec = matrix_spec(job.matrix)
        extras["paper_dimension"] = spec.dimension
        extras["paper_density"] = spec.density
        extras["kind"] = spec.kind
    return None, extras


#: Seeds each ``fuzz`` sweep job covers (jobs stagger by this stride).
FUZZ_SEEDS_PER_JOB = 25

#: Jobs a default ``fuzz`` sweep fans out (8 x 25 = 200 seeds).
FUZZ_DEFAULT_JOBS = 8


def _fuzz_pipeline(job: SweepJob, cache: ArtifactCache,
                   batch: str = "off",
                   ) -> Tuple[Optional[PerfReport], Dict[str, Any]]:
    """Differential ISA fuzzing as a sweep kernel.

    Each job replays a contiguous seed block through the engine oracles
    (:func:`repro.check.fuzz_batch`; in the default ``"off"`` batch mode
    this is verdict-identical to :func:`repro.check.fuzz_range`). With
    ``batch="jobs"`` the whole block executes as one
    :class:`~repro.pim.BatchEngine` launch — the block leader still runs
    the full three-oracle check and every seed's state is compared
    bitwise against a solo lane run. A clean block caches as an empty
    failure list under the same key in either mode, so repeated sweeps
    only pay for new seed ranges; any divergence raises so the job
    record carries the reproducer.
    """
    from ..check import fuzz_batch
    from ..errors import CheckError
    start, count = job.seed, FUZZ_SEEDS_PER_JOB
    key = cache.key("fuzz-range", start, count, job.precision)
    failures = cache.get_or_compute(
        "fuzz", key,
        lambda: fuzz_batch(range(start, start + count), shrink=True,
                           batch=batch,
                           group_size=count if batch == "jobs" else 1))
    if failures:
        raise CheckError(
            f"{len(failures)} divergent seeds in {start}..{start + count - 1}: "
            + " | ".join(f"seed {s}: {m}" for s, m in failures[:2]))
    extras = {"first_seed": start, "seed_count": count, "divergences": 0}
    return None, extras


_PIPELINES = {
    "spmv": _spmv_pipeline,
    "spmm": _spmm_pipeline,
    "sptrsv": _sptrsv_pipeline,
    "suite": _suite_pipeline,
    "fuzz": _fuzz_pipeline,
}


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def execute_job(job: SweepJob,
                cache_dir: Optional[Union[str, os.PathLike]] = None,
                use_cache: bool = True,
                batch: Optional[str] = None) -> JobRecord:
    """Run one job through its cached pipeline (worker entry point).

    Pipeline exceptions are *captured*, not propagated: the returned
    record carries the exception summary and full traceback so one bad
    job cannot take down a whole sweep (use
    :meth:`SweepResult.raise_failures` for fail-fast behaviour). An
    unknown kernel is a caller error and still raises. *batch* follows
    :func:`repro.config.resolve_batch`; kernels that tensorize over the
    jobs dimension (currently ``fuzz``) honour it, the rest run
    identically in either mode.
    """
    try:
        pipeline = _PIPELINES[job.kernel]
    except KeyError:
        raise ExecutionError(
            f"unknown sweep kernel {job.kernel!r}; "
            f"expected one of {sorted(_PIPELINES)}") from None
    batch = resolve_batch(batch)
    cache = ArtifactCache(cache_dir, enabled=use_cache)
    label = job.resolved_label()
    mark = obs.recorder().mark() if obs.enabled() else None
    start = time.perf_counter()
    report: Optional[PerfReport] = None
    extras: Dict[str, Any] = {}
    error = tb_text = ""
    with obs.span("sweep.job", cat="sweep", label=label,
                  kernel=job.kernel, matrix=job.matrix):
        try:
            report, extras = pipeline(job, cache, batch)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            tb_text = traceback_module.format_exc()
    wall = time.perf_counter() - start
    metrics = None
    if mark is not None:
        obs.add_counter("sweep.cache_hits", cache.hit_count)
        obs.add_counter("sweep.cache_misses", cache.miss_count)
        obs.add_counter("sweep.jobs", 1)
        if error:
            obs.add_counter("sweep.job_failures", 1)
        metrics = obs.recorder().delta_since(mark)
    attrib_report = extras.pop("_attrib", None)
    return JobRecord(label=label, kernel=job.kernel,
                     matrix=job.matrix, report=report,
                     seconds=report.seconds if report else 0.0,
                     wall_seconds=wall, cache_hits=cache.hit_count,
                     cache_misses=cache.miss_count,
                     worker=f"pid-{os.getpid()}", extras=extras, job=job,
                     error=error, traceback=tb_text, metrics=metrics,
                     attrib=attrib_report)


def _batch_key(job: SweepJob) -> tuple:
    """Group identity for batch mode: same kernel, same configuration.

    Matrix, triangular factor and seed are the per-job payload and stay
    free within a group; everything that selects a pipeline or a system
    configuration must match for jobs to share a tensorized round.
    """
    return (job.kernel, job.scale, job.precision, job.num_cubes,
            job.platform, job.mode, job.compress, job.policy,
            job.matrix_format, job.with_energy, job.channels,
            job.strategy, job.rhs, job.attrib)


def _batch_groups(jobs: Sequence[SweepJob]) -> "list[list[int]]":
    """Partition job indices into same-config groups, order-stable."""
    groups: Dict[tuple, list] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(_batch_key(job), []).append(index)
    return list(groups.values())


def execute_batch(jobs: Sequence[SweepJob],
                  cache_dir: Optional[Union[str, os.PathLike]] = None,
                  use_cache: bool = True,
                  batch: str = "jobs") -> "list[JobRecord]":
    """Run one same-config job group in a single worker call.

    Each job still flows through :func:`execute_job`, so its
    :class:`JobRecord`, obs counters and cache entries are identical to
    per-job mode — batching changes *where* the work runs (one worker
    round per group, with jobs-dimension tensorization inside the fuzz
    pipeline), never what it produces.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    with obs.span("sweep.batch", cat="sweep", jobs=len(jobs),
                  kernel=jobs[0].kernel):
        return [execute_job(job, cache_dir, use_cache, batch)
                for job in jobs]


def run_sweep(jobs: Iterable[SweepJob], workers: Optional[int] = None,
              cache_dir: Optional[Union[str, os.PathLike]] = None,
              use_cache: bool = True,
              batch: Optional[str] = None) -> SweepResult:
    """Execute *jobs* across worker processes and aggregate the outcomes.

    ``workers=None`` resolves via :func:`resolve_workers`
    (``PSYNCPIM_WORKERS`` or min(4, cores)); ``workers<=1`` runs serially
    in-process, which is also the fallback for single-job sweeps. Job order
    is preserved in the result. ``use_cache=False`` is the ``--no-cache``
    escape hatch: everything recomputes, nothing touches disk.

    ``batch`` resolves via :func:`repro.config.resolve_batch`
    (``PSYNCPIM_BATCH``; default ``"off"``). In ``"jobs"`` mode the job
    list is partitioned into same-kernel, same-config groups
    (:func:`execute_batch`) — one worker round per group — and
    jobs-dimension kernels (fuzz) execute each group's seed block as one
    :class:`~repro.pim.BatchEngine` launch. Records, their order, obs
    counters and cache entries match per-job mode exactly.
    """
    jobs = list(jobs)
    mode = resolve_batch(batch)
    workers = resolve_workers(default=workers) if workers is None \
        else max(int(workers), 1)
    groups = _batch_groups(jobs) if mode == "jobs" else []
    units = len(groups) if mode == "jobs" else len(jobs)
    workers = min(workers, max(units, 1))
    start = time.perf_counter()
    with obs.span("sweep.run", cat="sweep", jobs=len(jobs),
                  workers=workers, batch=mode):
        if workers <= 1:
            # Serial jobs record straight into this process's obs
            # recorder; their JobRecord.metrics payloads are
            # informational only.
            if mode == "jobs":
                slots: Dict[int, JobRecord] = {}
                for group in groups:
                    members = [jobs[i] for i in group]
                    for i, record in zip(group, execute_batch(
                            members, cache_dir, use_cache, mode)):
                        slots[i] = record
                records = [slots[i] for i in range(len(jobs))]
            else:
                records = [execute_job(job, cache_dir, use_cache, mode)
                           for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if mode == "jobs":
                    futures = [pool.submit(execute_batch,
                                           [jobs[i] for i in group],
                                           cache_dir, use_cache, mode)
                               for group in groups]
                    slots = {}
                    for group, future in zip(groups, futures):
                        for i, record in zip(group, future.result()):
                            slots[i] = record
                    records = [slots[i] for i in range(len(jobs))]
                else:
                    futures = [pool.submit(execute_job, job, cache_dir,
                                           use_cache, mode)
                               for job in jobs]
                    records = [future.result() for future in futures]
        if workers > 1 and obs.enabled():
            # Workers inherit the PSYNCPIM_OBS gate through fork/env;
            # fold their recorded deltas into the parent so one export
            # covers the whole fan-out (perf_counter_ns is machine-wide
            # monotonic, so worker spans align with the parent timeline).
            for record in records:
                if record.metrics:
                    obs.recorder().merge(record.metrics)
    wall = time.perf_counter() - start
    root = ArtifactCache(cache_dir, enabled=use_cache).root
    return SweepResult(records=records, wall_seconds=wall, workers=workers,
                       cache_enabled=use_cache, cache_dir=str(root),
                       batch=mode)


def suite_jobs(kernel: str = "spmv", matrices: Optional[Iterable[str]] = None,
               scale: Optional[float] = None, **overrides: Any,
               ) -> "list[SweepJob]":
    """Build the job list for a Table IX sweep.

    With no explicit *matrices*, SpMV and SpTRSV sweeps cover their Table
    IX kernel assignments and the ``suite`` kernel covers all 26 matrices.
    For SpTRSV both triangular factors are swept (the Fig. 9 protocol)
    unless ``lower`` is pinned via *overrides*.
    """
    from ..formats import matrices_for
    if kernel == "fuzz":
        # No matrices: fan out staggered seed blocks instead.
        first = int(overrides.pop("seed", 0))
        return [SweepJob(kernel="fuzz", matrix="isa-programs",
                         label=f"fuzz:seeds-{first + i * FUZZ_SEEDS_PER_JOB}",
                         seed=first + i * FUZZ_SEEDS_PER_JOB, **overrides)
                for i in range(FUZZ_DEFAULT_JOBS)]
    if matrices is None:
        if kernel == "suite":
            matrices = suite_names()
        elif kernel in ("spmv", "sptrsv"):
            matrices = matrices_for(kernel)
        elif kernel == "spmm":
            # SpMM shares the SpMV Table IX assignment (same matrices,
            # k dense right-hand sides).
            matrices = matrices_for("spmv")
        else:
            raise ExecutionError(
                f"no default matrix list for kernel {kernel!r}")
    scale = resolve_bench_scale() if scale is None else scale
    jobs = []
    for name in matrices:
        if kernel == "sptrsv" and "lower" not in overrides:
            jobs.append(SweepJob(kernel=kernel, matrix=name, scale=scale,
                                 lower=True, **overrides))
            jobs.append(SweepJob(kernel=kernel, matrix=name, scale=scale,
                                 lower=False, **overrides))
        else:
            jobs.append(SweepJob(kernel=kernel, matrix=name, scale=scale,
                                 **overrides))
    return jobs


__all__ = ["SweepJob", "execute_job", "execute_batch", "run_sweep",
           "suite_jobs", "resolve_bench_scale", "resolve_workers",
           "default_cache_dir", "DEFAULT_SCALE", "FUZZ_SEEDS_PER_JOB",
           "FUZZ_DEFAULT_JOBS", "SCALE_ENV", "LEGACY_SCALE_ENV",
           "WORKERS_ENV"]
