"""Sweep execution: parallel job batches with content-addressed caching.

The paper's experiments (Figs. 8-14, Table IX, the ablations) all repeat
one expensive pipeline per matrix per configuration. This package runs
those (matrix, kernel, config) jobs across worker processes and reuses the
pipeline's intermediate artifacts — partition/compression plans, command
traces, schedule results — from an on-disk content-addressed cache.

Entry points: :func:`run_sweep` / :func:`suite_jobs` (library),
:meth:`repro.core.PSyncPIM.sweep` (runtime object), ``psyncpim sweep``
(CLI). Aggregation lives in :class:`repro.analysis.SweepResult`.
"""

from ..analysis.report import JobRecord, SweepResult
from .cache import (CACHE_DIR_ENV, CACHE_VERSION, ArtifactCache,
                    default_cache_dir, matrix_digest, stable_digest)
from .runner import (DEFAULT_SCALE, FUZZ_DEFAULT_JOBS, FUZZ_SEEDS_PER_JOB,
                     LEGACY_SCALE_ENV, SCALE_ENV, WORKERS_ENV, SweepJob,
                     execute_batch, execute_job, resolve_bench_scale,
                     resolve_workers, run_sweep, suite_jobs)

__all__ = [
    "ArtifactCache", "CACHE_DIR_ENV", "CACHE_VERSION", "DEFAULT_SCALE",
    "FUZZ_DEFAULT_JOBS", "FUZZ_SEEDS_PER_JOB", "JobRecord",
    "LEGACY_SCALE_ENV", "SCALE_ENV", "SweepJob", "SweepResult",
    "WORKERS_ENV", "default_cache_dir", "execute_batch", "execute_job",
    "matrix_digest", "resolve_bench_scale", "resolve_workers",
    "run_sweep", "stable_digest", "suite_jobs",
]
