"""Preconditioned iterative solvers (Table II: P-CG and P-BCGS).

Both solvers follow the textbook formulations (Hestenes-Stiefel CG and
van der Vorst's BiCGStab) with an ILDU preconditioner: M^-1 = U^-1 D^-1
L^-1 applied as two pSyncPIM SpTRSV kernels plus a diagonal scale (§VI-D:
the diagonal is stored inverted so no division runs on the PIM). Every
kernel goes through the backend so the Fig. 11/12 time breakdowns fall out
of the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core import ILDUFactors, ildu
from ..errors import SolverError
from ..formats import COOMatrix
from .backends import Backend
from .graphs import AppResult, _finish


@dataclass
class SolverOutcome:
    """Solution vector plus convergence diagnostics."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float


def _precondition(factors: ILDUFactors, r, backend: Backend) -> np.ndarray:
    """z = U^-1 D^-1 L^-1 r through the backend's SpTRSV + scale."""
    y = backend.sptrsv(factors.lower, r, lower=True)
    y = backend.ewise(y, factors.diag_inv, "mul")
    return backend.sptrsv(factors.upper, y, lower=False)


def pcg(matrix: COOMatrix, b: np.ndarray, backend: Backend,
        factors: Optional[ILDUFactors] = None, tol: float = 1e-8,
        max_iterations: int = 200) -> AppResult:
    """Preconditioned Conjugate Gradient for SPD systems."""
    if not matrix.is_square:
        raise SolverError("P-CG needs a square matrix")
    b = np.asarray(b, dtype=np.float64)
    backend.reset()
    if factors is None:
        factors = ildu(matrix)
    n = matrix.shape[0]
    x = np.zeros(n)
    r = b.copy()
    z = _precondition(factors, r, backend)
    p = z.copy()
    rz = backend.dot(r, z)
    b_norm = backend.norm(b)
    if b_norm == 0.0:
        return _finish("P-CG", backend,
                       SolverOutcome(x, True, 0, 0.0), 0)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        ap = backend.spmv(matrix, p)
        denom = backend.dot(p, ap)
        if denom <= 0:
            raise SolverError("P-CG: operator is not positive definite")
        alpha = rz / denom
        x = backend.axpy(alpha, p, x)
        r = backend.axpy(-alpha, ap, r)
        residual = backend.norm(r) / b_norm
        if residual < tol:
            converged = True
            break
        z = _precondition(factors, r, backend)
        rz_next = backend.dot(r, z)
        beta = rz_next / rz
        rz = rz_next
        p = backend.axpy(beta, p, z)
    residual = float(np.linalg.norm(b - matrix.matvec(x)) /
                     np.linalg.norm(b))
    return _finish("P-CG", backend,
                   SolverOutcome(x, converged, iteration, residual),
                   iteration)


def pbicgstab(matrix: COOMatrix, b: np.ndarray, backend: Backend,
              factors: Optional[ILDUFactors] = None, tol: float = 1e-8,
              max_iterations: int = 200) -> AppResult:
    """Preconditioned BiCGStab for general square systems."""
    if not matrix.is_square:
        raise SolverError("P-BCGS needs a square matrix")
    b = np.asarray(b, dtype=np.float64)
    backend.reset()
    if factors is None:
        factors = ildu(matrix)
    n = matrix.shape[0]
    x = np.zeros(n)
    r = b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    b_norm = backend.norm(b)
    if b_norm == 0.0:
        return _finish("P-BCGS", backend,
                       SolverOutcome(x, True, 0, 0.0), 0)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        rho_next = backend.dot(r_hat, r)
        if rho_next == 0.0:
            break  # breakdown: restart would be needed
        beta = (rho_next / rho) * (alpha / omega)
        rho = rho_next
        p = backend.axpy(-omega, v, p)
        p = backend.axpy(beta, p, r)
        p_hat = _precondition(factors, p, backend)
        v = backend.spmv(matrix, p_hat)
        alpha = rho / backend.dot(r_hat, v)
        s = backend.axpy(-alpha, v, r)
        if backend.norm(s) / b_norm < tol:
            x = backend.axpy(alpha, p_hat, x)
            converged = True
            break
        s_hat = _precondition(factors, s, backend)
        t = backend.spmv(matrix, s_hat)
        tt = backend.dot(t, t)
        if tt == 0.0:
            break
        omega = backend.dot(t, s) / tt
        x = backend.axpy(alpha, p_hat, x)
        x = backend.axpy(omega, s_hat, x)
        r = backend.axpy(-omega, t, s)
        if backend.norm(r) / b_norm < tol:
            converged = True
            break
    residual = float(np.linalg.norm(b - matrix.matvec(x)) /
                     np.linalg.norm(b))
    return _finish("P-BCGS", backend,
                   SolverOutcome(x, converged, iteration, residual),
                   iteration)
