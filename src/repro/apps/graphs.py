"""Graph applications over the backend interface (Table II).

Each application is a standard linear-algebra formulation (the GraphBLAS
style the paper's GPU baseline uses): frontiers, labels and distances are
dense vectors, and every traversal step is a semiring SpMV. The same code
runs on the GPU and PIM backends; only the cost metering differs.

All functions return an :class:`AppResult` with the numerical answer, the
iteration count and the backend's kernel-class time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..errors import ExecutionError
from ..formats import COOMatrix
from .backends import Backend


@dataclass
class AppResult:
    """Outcome of one application run on one backend."""

    name: str
    backend: str
    value: object
    iterations: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.breakdown.values())


def _finish(name: str, backend: Backend, value, iterations) -> AppResult:
    result = AppResult(name=name, backend=backend.name, value=value,
                       iterations=iterations,
                       breakdown=dict(backend.ledger))
    return result


def bfs(graph: COOMatrix, source: int, backend: Backend,
        precision: str = "int8") -> AppResult:
    """Breadth-first search: boolean-semiring frontier expansion.

    Returns the level (hop distance) of every vertex, -1 if unreachable.
    Frontiers are boolean, so the PIM runs the INT8 value format (§VII-B);
    the GPU model floors at FP32 either way.
    """
    n = graph.shape[0]
    if not 0 <= source < n:
        raise ExecutionError("BFS source out of range")
    backend.reset()
    at = graph.transpose()  # pull direction: f' = A^T f
    levels = np.full(n, -1.0)
    levels[source] = 0.0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    iterations = 0
    while frontier.any() and iterations < n:
        iterations += 1
        reached = backend.spmv(at, frontier, multiply="land",
                               accumulate="lor", precision=precision)
        # masked frontier update: GraphBLAST fuses the visited mask into
        # the traversal, so this is one metered vector kernel
        frontier = backend.ewise(reached, (levels < 0).astype(float),
                                 "mul", precision=precision)
        levels[frontier > 0] = iterations
    return _finish("BFS", backend, levels, iterations)


def connected_components(graph: COOMatrix, backend: Backend,
                         max_iterations: int = 1000,
                         precision: str = "int32") -> AppResult:
    """Label propagation on the symmetrised graph: l' = min(l, A . l).

    Labels are vertex indices, so INT32 operands suffice on the PIM.
    """
    n = graph.shape[0]
    backend.reset()
    sym = _symmetrise(graph)
    labels = np.arange(n, dtype=float)
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        pulled = backend.spmv(sym, labels, multiply="second",
                              accumulate="min",
                              y0=np.full(n, np.inf), precision=precision)
        new_labels = backend.ewise(labels, pulled, "min",
                                   precision=precision)
        changed = backend.dot((new_labels != labels).astype(float),
                              np.ones(n), precision=precision)
        labels = new_labels
        if changed == 0:
            break
    return _finish("CC", backend, labels, iterations)


def pagerank(graph: COOMatrix, backend: Backend, damping: float = 0.85,
             iterations: int = 20,
             precision: str = "fp32") -> AppResult:
    """Power-iteration PageRank with uniform teleport (FP32 ranks)."""
    n = graph.shape[0]
    backend.reset()
    out_degree = np.maximum(graph.row_counts(), 1).astype(float)
    # column-stochastic walk matrix W^T = (A / outdeg)^T
    walk = COOMatrix(graph.shape, graph.cols.copy(), graph.rows.copy(),
                     graph.vals / out_degree[graph.rows], check=False)
    rank = np.full(n, 1.0 / n)
    teleport = np.full(n, (1.0 - damping) / n)
    for _ in range(iterations):
        spread = backend.spmv(walk, rank, precision=precision)
        rank = backend.axpy(damping, spread, teleport,
                            precision=precision)
    return _finish("PR", backend, rank, iterations)


def sssp(graph: COOMatrix, source: int, backend: Backend,
         precision: str = "fp32") -> AppResult:
    """Bellman-Ford SSSP on the (min, +) semiring (FP32 distances)."""
    n = graph.shape[0]
    if not 0 <= source < n:
        raise ExecutionError("SSSP source out of range")
    backend.reset()
    at = graph.transpose()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    iterations = 0
    while iterations < n:
        iterations += 1
        relaxed = backend.spmv(at, dist, multiply="add", accumulate="min",
                               y0=dist, precision=precision)
        changed = backend.dot((relaxed < dist).astype(float), np.ones(n),
                              precision=precision)
        dist = backend.ewise(dist, relaxed, "min", precision=precision)
        if changed == 0:
            break
    return _finish("SSSP", backend, dist, iterations)


def triangle_count(graph: COOMatrix, backend: Backend) -> AppResult:
    """Masked-SpGEMM triangle counting (the Fig. 13 workload).

    ``C = (L @ L) .* L`` over the lower triangle of the symmetrised
    adjacency counts each triangle once; the reduction of C runs as an
    SpMV against the all-ones vector (the kernel the Fig. 13 experiment
    offloads to pSyncPIM).
    """
    backend.reset()
    sym = _symmetrise(graph)
    lower = sym.strictly_lower()
    closed = backend.spgemm(lower, lower, mask=lower)
    row_sums = backend.spmv(closed, np.ones(closed.shape[1]),
                            precision="int32")
    total = backend.dot(row_sums, np.ones(row_sums.size),
                        precision="int32")
    return _finish("TC", backend, float(round(total)), 1)


def _symmetrise(graph: COOMatrix) -> COOMatrix:
    """Undirected view of a graph: pattern of A | A^T with unit weights."""
    rows = np.concatenate([graph.rows, graph.cols])
    cols = np.concatenate([graph.cols, graph.rows])
    n = graph.shape[1]
    keys = rows * n + cols
    _, first = np.unique(keys, return_index=True)
    return COOMatrix(graph.shape, rows[first], cols[first],
                     np.ones(first.size), check=False)
