"""End-to-end applications (Table II) over the GPU/PIM backends."""

from .backends import (KERNEL_CLASSES, Backend, GPUBackend, PIMBackend)
from .graphs import (AppResult, bfs, connected_components, pagerank, sssp,
                     triangle_count)
from .solvers import SolverOutcome, pbicgstab, pcg

__all__ = [
    "KERNEL_CLASSES", "Backend", "GPUBackend", "PIMBackend", "AppResult",
    "bfs", "connected_components", "pagerank", "sssp", "triangle_count",
    "SolverOutcome", "pbicgstab", "pcg",
]
