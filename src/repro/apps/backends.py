"""Execution backends for the end-to-end applications (Figs. 2, 11, 12).

An application is written once against the :class:`Backend` interface; the
backend both *computes* each kernel and *meters* its cost into a ledger
keyed by kernel class (``spmv`` / ``sptrsv`` / ``vector`` / ``spgemm``) —
the same decomposition the paper's Figure 2/12 breakdowns use.

* :class:`GPUBackend` computes with numpy/scipy and meters with the
  RTX 3080 model (GraphBLAST-flavoured costs for graph applications,
  cuSPARSE-flavoured for linear algebra — matching §VII-A's methodology).
* :class:`PIMBackend` computes SpMV/SpTRSV through the pSyncPIM plan (the
  fast tier runs the genuine tile decomposition) and meters with the
  command-trace timing model. Vector kernels run on the PIM BLAS-1 engine
  cost model. SpGEMM is not a PIM kernel (§II-E): it goes to the host-side
  SpGEMM accelerator, or — for the Fig. 13 accelerator-only scenario — the
  SpMV kernels do too, through the inefficient SpMV-as-SpGEMM path.

Per-kernel timings are memoised on operand shape: iterative applications
re-execute structurally identical kernels, so the schedule is priced once
and charged per call (this is also how the authors' simulator amortises
trace replay).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import GPUModel, SpGEMMAcceleratorModel
from ..config import SystemConfig, default_system
from ..core import (level_schedule, run_spmv, run_sptrsv,
                    time_dense_kernel, time_spmv, time_sptrsv)
from ..errors import ExecutionError
from ..formats import COOMatrix, coo_to_scipy, scipy_to_coo

KERNEL_CLASSES = ("spmv", "sptrsv", "vector", "spgemm")


class Backend:
    """Shared ledger mechanics; subclasses implement compute + metering."""

    name = "abstract"

    def __init__(self) -> None:
        self.ledger: Dict[str, float] = {k: 0.0 for k in KERNEL_CLASSES}
        self.calls: Dict[str, int] = {k: 0 for k in KERNEL_CLASSES}

    def _charge(self, kind: str, seconds: float) -> None:
        self.ledger[kind] += seconds
        self.calls[kind] += 1

    @property
    def total_seconds(self) -> float:
        return sum(self.ledger.values())

    def reset(self) -> None:
        for key in KERNEL_CLASSES:
            self.ledger[key] = 0.0
            self.calls[key] = 0

    # -- compute helpers shared by both backends ------------------------
    @staticmethod
    def _semiring_spmv(matrix: COOMatrix, x, multiply, accumulate, y0):
        """Golden semiring SpMV used by the GPU backend."""
        mult = {"mul": np.multiply, "add": np.add,
                "second": lambda a, b: b,
                "land": lambda a, b: np.logical_and(a, b).astype(float),
                }[multiply]
        acc = {"add": np.add, "sub": np.subtract, "min": np.minimum,
               "max": np.maximum, "lor": np.maximum}[accumulate]
        y = (np.zeros(matrix.shape[0]) if y0 is None
             else np.asarray(y0, dtype=np.float64).copy())
        products = np.asarray(
            mult(matrix.vals, np.asarray(x, dtype=np.float64)[matrix.cols]),
            dtype=np.float64)
        acc.at(y, matrix.rows, products)
        if accumulate == "lor":
            y = (y != 0).astype(float)
        return y


class GPUBackend(Backend):
    """RTX 3080 + cuSPARSE/GraphBLAST cost metering."""

    name = "gpu"

    def __init__(self, model: Optional[GPUModel] = None,
                 graphblast: bool = False) -> None:
        super().__init__()
        self.model = model or GPUModel()
        self.graphblast = graphblast
        self._level_cache: Dict[int, int] = {}

    def spmv(self, matrix: COOMatrix, x, multiply="mul", accumulate="add",
             y0=None, precision="fp64"):
        y = self._semiring_spmv(matrix, x, multiply, accumulate, y0)
        self._charge("spmv", self.model.spmv_seconds(
            matrix.shape[0], matrix.shape[1], matrix.nnz, precision))
        return y

    def sptrsv(self, tri: COOMatrix, b, lower=True, precision="fp64"):
        from ..core import solve_unit_triangular_reference
        x = solve_unit_triangular_reference(tri, b, lower=lower)
        key = id(tri)
        if key not in self._level_cache:
            self._level_cache[key] = len(level_schedule(tri, lower=lower))
        self._charge("sptrsv", self.model.sptrsv_seconds(
            tri.shape[0], tri.nnz, self._level_cache[key], precision))
        return x

    def ewise(self, x, y, op, precision="fp64"):
        fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
              "min": np.minimum, "max": np.maximum,
              "ne": lambda a, b: (a != b).astype(float)}[op]
        self._charge("vector", self.model.dense_vector_seconds(
            np.size(x), streams=3, precision=precision,
            graphblast=self.graphblast))
        return fn(np.asarray(x, dtype=float), np.asarray(y, dtype=float))

    def axpy(self, alpha, x, y, precision="fp64"):
        self._charge("vector", self.model.dense_vector_seconds(
            np.size(x), streams=3, precision=precision,
            graphblast=self.graphblast))
        return float(alpha) * np.asarray(x, float) + np.asarray(y, float)

    def scale(self, alpha, x, precision="fp64"):
        self._charge("vector", self.model.dense_vector_seconds(
            np.size(x), streams=2, precision=precision,
            graphblast=self.graphblast))
        return float(alpha) * np.asarray(x, float)

    def dot(self, x, y, precision="fp64"):
        self._charge("vector", self.model.reduction_seconds(
            np.size(x), precision=precision, graphblast=self.graphblast))
        return float(np.dot(x, y))

    def norm(self, x, precision="fp64"):
        self._charge("vector", self.model.reduction_seconds(
            np.size(x), precision=precision, graphblast=self.graphblast))
        return float(np.linalg.norm(x))

    def spgemm(self, a: COOMatrix, b: COOMatrix,
               mask: Optional[COOMatrix] = None) -> COOMatrix:
        product, flops = _host_spgemm(a, b, mask)
        self._charge("spgemm", self.model.spgemm_seconds(
            flops, a.nnz + b.nnz, product.nnz))
        return product


class PIMBackend(Backend):
    """pSyncPIM execution: plan-faithful compute + trace-model metering."""

    name = "psyncpim"

    def __init__(self, config: Optional[SystemConfig] = None,
                 accelerator: Optional[SpGEMMAcceleratorModel] = None,
                 offload_spmv: bool = True) -> None:
        super().__init__()
        self.config = config or default_system()
        self.accelerator = accelerator or SpGEMMAcceleratorModel()
        #: Fig. 13 switch: False routes SpMV through the SpGEMM
        #: accelerator's inefficient non-square path instead of the PIM.
        self.offload_spmv = offload_spmv
        self._spmv_cache: Dict[Tuple[int, str], float] = {}
        self._sptrsv_cache: Dict[Tuple[int, bool], float] = {}
        self._vector_cache: Dict[Tuple[int, int, int, str], float] = {}

    # ------------------------------------------------------------------
    def spmv(self, matrix: COOMatrix, x, multiply="mul", accumulate="add",
             y0=None, precision="fp64"):
        result = run_spmv(matrix, x, self.config, precision=precision,
                          multiply=multiply, accumulate=accumulate, y0=y0,
                          fidelity="fast")
        if self.offload_spmv:
            key = (id(matrix), precision)
            if key not in self._spmv_cache:
                self._spmv_cache[key] = time_spmv(
                    result.execution, self.config).seconds
            self._charge("spmv", self._spmv_cache[key])
        else:
            self._charge("spmv", self.accelerator.spmv_as_spgemm_seconds(
                matrix.shape[0], matrix.nnz))
        return result.y

    def sptrsv(self, tri: COOMatrix, b, lower=True, precision="fp64"):
        result = run_sptrsv(tri, b, self.config, lower=lower,
                            precision=precision, fidelity="fast")
        key = (id(tri), lower)
        if key not in self._sptrsv_cache:
            self._sptrsv_cache[key] = time_sptrsv(result.execution,
                                                  self.config).seconds
        self._charge("sptrsv", self._sptrsv_cache[key])
        return result.x

    # ------------------------------------------------------------------
    def _vector_charge(self, n: int, reads: int, writes: int,
                       precision: str) -> None:
        key = (n, reads, writes, precision)
        if key not in self._vector_cache:
            self._vector_cache[key] = time_dense_kernel(
                n, reads, writes, self.config, precision=precision).seconds
        self._charge("vector", self._vector_cache[key])

    def ewise(self, x, y, op, precision="fp64"):
        fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
              "min": np.minimum, "max": np.maximum,
              "ne": lambda a, b: (a != b).astype(float)}[op]
        self._vector_charge(np.size(x), 2, 1, precision)
        return fn(np.asarray(x, dtype=float), np.asarray(y, dtype=float))

    def axpy(self, alpha, x, y, precision="fp64"):
        self._vector_charge(np.size(x), 2, 1, precision)
        return float(alpha) * np.asarray(x, float) + np.asarray(y, float)

    def scale(self, alpha, x, precision="fp64"):
        self._vector_charge(np.size(x), 1, 1, precision)
        return float(alpha) * np.asarray(x, float)

    def dot(self, x, y, precision="fp64"):
        self._vector_charge(np.size(x), 2, 0, precision)
        return float(np.dot(x, y))

    def norm(self, x, precision="fp64"):
        self._vector_charge(np.size(x), 2, 0, precision)
        return float(np.linalg.norm(x))

    def spgemm(self, a: COOMatrix, b: COOMatrix,
               mask: Optional[COOMatrix] = None) -> COOMatrix:
        """SpGEMM stays on the host-side accelerator (§II-E)."""
        product, flops = _host_spgemm(a, b, mask)
        self._charge("spgemm", self.accelerator.spgemm_seconds(
            flops, a.nnz + b.nnz, product.nnz))
        return product


def _host_spgemm(a: COOMatrix, b: COOMatrix,
                 mask: Optional[COOMatrix]) -> Tuple[COOMatrix, float]:
    """Compute A @ B (optionally masked) and the multiply count."""
    if a.shape[1] != b.shape[0]:
        raise ExecutionError("SpGEMM shape mismatch")
    sa, sb = coo_to_scipy(a).tocsr(), coo_to_scipy(b).tocsr()
    # flops: one multiply per (a_ik, b_kj) pairing
    col_counts = np.bincount(b.rows, minlength=b.shape[0])
    flops = float(np.sum(col_counts[a.cols]))
    product = sa @ sb
    if mask is not None:
        product = product.multiply(coo_to_scipy(mask).astype(bool))
    product = product.tocoo()
    product.eliminate_zeros()
    return scipy_to_coo(product), flops
