"""Exception hierarchy for the pSyncPIM reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause while the
sub-classes keep failure modes distinguishable in tests and tooling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An architectural configuration is internally inconsistent."""


class FormatError(ReproError):
    """A sparse matrix/vector container or file is malformed."""


class AddressError(ReproError):
    """A physical address cannot be decoded or is out of range."""


class TimingError(ReproError):
    """A DRAM command violates protocol state (e.g. RD to a closed row)."""


class EncodingError(ReproError):
    """A PIM instruction cannot be encoded into / decoded from 32 bits."""


class AssemblerError(ReproError):
    """PIM assembly text is syntactically or semantically invalid."""


class ExecutionError(ReproError):
    """A processing unit reached an illegal state while running a kernel."""


class CapacityError(ReproError):
    """Data does not fit the hardware resource it was mapped to."""


class MappingError(ReproError):
    """A matrix/vector cannot be laid out onto banks as requested."""


class SolverError(ReproError):
    """An iterative solver failed to converge or received bad operands."""


class CheckError(ReproError):
    """A conformance check failed (protocol violation, oracle divergence,
    golden-trace mismatch)."""
