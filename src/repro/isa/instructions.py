"""Instruction dataclasses for the two pSyncPIM formats.

:class:`BInstruction` carries the binary-operation format fields and
:class:`CInstruction` the control format fields of Fig. 5 / Table IV. Both
validate their field ranges on construction so a malformed instruction can
never reach the encoder or the processing unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import EncodingError
from .opcodes import (BinaryOp, Identity, Opcode, Operand, SetMode, SubQueue,
                      ValueFormat)


@dataclass(frozen=True)
class BInstruction:
    """Binary-operation format: data movement and vector arithmetic."""

    opcode: Opcode
    dst: Operand = Operand.BANK
    src0: Operand = Operand.BANK
    src1: Operand = Operand.BANK
    value: ValueFormat = ValueFormat.FP64
    binary: BinaryOp = BinaryOp.ADD
    set_mode: SetMode = SetMode.INTERSECTION
    idx: SubQueue = SubQueue.ALL
    idnt: Identity = Identity.ZERO

    def __post_init__(self) -> None:
        if self.opcode.is_control:
            raise EncodingError(
                f"{self.opcode.name} is a control instruction; "
                "use CInstruction")

    @property
    def mnemonic(self) -> str:
        return self.opcode.name

    def __str__(self) -> str:
        parts = [f"{self.mnemonic:<7} {self.dst.name}, {self.src0.name}, "
                 f"{self.src1.name}"]
        parts.append(f"value={self.value.name.lower()}")
        if self.opcode.is_binary:
            parts.append(f"binary={self.binary.name.lower()}")
            parts.append(f"s={self.set_mode.name.lower()}")
        if self.idx is not SubQueue.ALL:
            parts.append(f"idx={self.idx.name.lower()}")
        if self.idnt is not Identity.ZERO:
            parts.append(f"idnt={self.idnt.name.lower()}")
        return " ".join(parts)


@dataclass(frozen=True)
class CInstruction:
    """Control format: NOP, JUMP, EXIT and CEXIT.

    ``imm0`` is the jump target (instruction slot), ``order`` distinguishes
    nested loops (5-bit ORDER field, §IV-F), and ``imm1`` is the iteration
    counter for JUMP or the SpVQ bitmask for CEXIT.
    """

    opcode: Opcode
    imm0: int = 0
    order: int = 0
    imm1: int = 0

    def __post_init__(self) -> None:
        if not self.opcode.is_control:
            raise EncodingError(
                f"{self.opcode.name} is not a control instruction")
        if not 0 <= self.imm0 < 256:
            raise EncodingError(f"imm0 {self.imm0} outside 8-bit range")
        if not 0 <= self.order < 64:
            raise EncodingError(f"order {self.order} outside 6-bit range")
        if not 0 <= self.imm1 < 1024:
            raise EncodingError(f"imm1 {self.imm1} outside 10-bit range")
        if self.opcode is Opcode.JUMP and self.imm1 == 0:
            raise EncodingError("JUMP requires a non-zero iteration count")
        if self.opcode is Opcode.CEXIT and not 0 < self.imm1 < 8:
            raise EncodingError("CEXIT requires a queue mask in [1, 7]")

    @property
    def mnemonic(self) -> str:
        return self.opcode.name

    @property
    def queue_mask(self) -> int:
        """SpVQ mask watched by CEXIT (bit i = SpVQ i)."""
        if self.opcode is not Opcode.CEXIT:
            raise EncodingError("queue_mask is only defined for CEXIT")
        return self.imm1

    def __str__(self) -> str:
        if self.opcode is Opcode.JUMP:
            return (f"JUMP    @{self.imm0} order={self.order} "
                    f"count={self.imm1}")
        if self.opcode is Opcode.CEXIT:
            queues = ",".join(f"SPVQ{i}" for i in range(3)
                              if self.imm1 & (1 << i))
            return f"CEXIT   {queues}"
        return self.mnemonic


Instruction = Union[BInstruction, CInstruction]
