"""The pSyncPIM instruction set: opcodes, encodings, programs, assembler."""

from .opcodes import (BinaryOp, Identity, Opcode, Operand, SetMode,
                      SubQueue, ValueFormat)
from .instructions import BInstruction, CInstruction, Instruction
from .encoding import (INSTRUCTION_BYTES, decode, decode_bytes, encode,
                       encode_bytes)
from .program import MAX_INSTRUCTIONS, Program
from .assembler import assemble

__all__ = [
    "BinaryOp", "Identity", "Opcode", "Operand", "SetMode", "SubQueue",
    "ValueFormat", "BInstruction", "CInstruction", "Instruction",
    "INSTRUCTION_BYTES", "decode", "decode_bytes", "encode", "encode_bytes",
    "MAX_INSTRUCTIONS", "Program", "assemble",
]
