"""Two-pass assembler for pSyncPIM kernel text.

The paper's kernels are "hand-coded PIM assembly" (§VII-A); this assembler
lets the kernel library and users write them as readable text instead of
constructing dataclasses by hand. Syntax, one instruction per line::

    ; comment                     (also # comments)
    label:                        ; jump target
        SPMOV  SPVQ0, BANK        value=fp64 idx=all
        INDMOV SRF, BANK, SPVQ0
        SSPV   SPVQ1, SRF, SPVQ0  binary=mul
        JUMP   label              order=0 count=100
        CEXIT  SPVQ0              ; or CEXIT SPVQ0|SPVQ1
        EXIT

Operands are comma-separated register names; trailing ``key=value`` pairs
set the B-format modifier fields (``value``, ``binary``, ``s``, ``idx``,
``idnt``) or the C-format immediates (``order``, ``count``, ``target``).
Mnemonics, register names and modifiers are case-insensitive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .instructions import BInstruction, CInstruction, Instruction
from .opcodes import (BinaryOp, Identity, Opcode, Operand, SetMode, SubQueue,
                      ValueFormat)
from .program import Program

_MNEMONICS: Dict[str, Opcode] = {op.name: op for op in Opcode}
_MNEMONICS["INDMOV"] = Opcode.INDMOV  # canonical spellings
_ALIASES = {"IND_MOV": Opcode.INDMOV, "GTH_SCT": Opcode.GTHSCT}

_MODIFIER_ENUMS = {
    "value": ValueFormat,
    "binary": BinaryOp,
    "s": SetMode,
    "idx": SubQueue,
    "idnt": Identity,
}


def assemble(text: str, name: str = "kernel") -> Program:
    """Assemble kernel *text* into a validated :class:`Program`."""
    statements, labels = _first_pass(text)
    instructions: List[Instruction] = []
    for lineno, mnemonic, operands, modifiers in statements:
        try:
            instructions.append(
                _build(mnemonic, operands, modifiers, labels))
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from None
    if not instructions:
        raise AssemblerError("no instructions in program text")
    try:
        return Program(instructions, name=name)
    except Exception as exc:
        raise AssemblerError(f"invalid program: {exc}") from None


# ----------------------------------------------------------------------
def _first_pass(text: str) -> Tuple[List[Tuple[int, str, List[str],
                                               Dict[str, str]]],
                                    Dict[str, int]]:
    """Strip comments, collect labels, split statements."""
    statements = []
    labels: Dict[str, int] = {}
    slot = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while line and ":" in line.split()[0]:
            head, _, rest = line.partition(":")
            label = head.strip().upper()
            if not label.isidentifier():
                raise AssemblerError(
                    f"line {lineno}: bad label {head.strip()!r}")
            if label in labels:
                raise AssemblerError(
                    f"line {lineno}: duplicate label {head.strip()!r}")
            labels[label] = slot
            line = rest.strip()
        if not line:
            continue
        mnemonic, operands, modifiers = _split_statement(line, lineno)
        statements.append((lineno, mnemonic, operands, modifiers))
        slot += 1
    return statements, labels


def _split_statement(line: str, lineno: int):
    tokens = line.split()
    mnemonic = tokens[0].upper()
    operand_tokens: List[str] = []
    modifiers: Dict[str, str] = {}
    for token in tokens[1:]:
        if "=" in token:
            key, _, value = token.partition("=")
            key = key.strip().lower()
            if not key or not value:
                raise AssemblerError(f"line {lineno}: bad modifier {token!r}")
            modifiers[key] = value.strip()
        else:
            operand_tokens.append(token)
    operands = [p.strip().upper()
                for p in " ".join(operand_tokens).split(",") if p.strip()]
    return mnemonic, operands, modifiers


def _opcode(mnemonic: str) -> Opcode:
    if mnemonic in _MNEMONICS:
        return _MNEMONICS[mnemonic]
    if mnemonic in _ALIASES:
        return _ALIASES[mnemonic]
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")


def _operand(token: str) -> Operand:
    try:
        return Operand[token]
    except KeyError:
        raise AssemblerError(f"unknown operand {token!r}") from None


def _modifier(kind_name: str, token: str):
    kind = _MODIFIER_ENUMS[kind_name]
    try:
        return kind[token.upper()]
    except KeyError:
        valid = ", ".join(m.name.lower() for m in kind)
        raise AssemblerError(
            f"bad {kind_name}={token!r}; expected one of {valid}") from None


def _build(mnemonic: str, operands: List[str], modifiers: Dict[str, str],
           labels: Dict[str, int]) -> Instruction:
    opcode = _opcode(mnemonic)
    if opcode.is_control:
        return _build_control(opcode, operands, modifiers, labels)
    return _build_b_format(opcode, operands, modifiers)


def _build_control(opcode: Opcode, operands: List[str],
                   modifiers: Dict[str, str],
                   labels: Dict[str, int]) -> CInstruction:
    unknown = set(modifiers) - {"order", "count", "target"}
    if unknown:
        raise AssemblerError(f"unknown modifiers {sorted(unknown)}")
    order = _int_modifier(modifiers, "order", 0)
    if opcode is Opcode.JUMP:
        target = _jump_target(operands, modifiers, labels)
        count = _int_modifier(modifiers, "count", None)
        if count is None:
            raise AssemblerError("JUMP requires count=<iterations>")
        return CInstruction(Opcode.JUMP, imm0=target, order=order,
                            imm1=count)
    if opcode is Opcode.CEXIT:
        if not operands:
            raise AssemblerError("CEXIT requires at least one SPVQ operand")
        mask = 0
        for part in operands:
            for token in part.split("|"):
                queue = _operand(token.strip())
                if not queue.is_sparse_queue:
                    raise AssemblerError(
                        f"CEXIT watches sparse queues, not {token!r}")
                mask |= 1 << queue.queue_index
        return CInstruction(Opcode.CEXIT, imm1=mask)
    if operands:
        raise AssemblerError(f"{opcode.name} takes no operands")
    return CInstruction(opcode)


def _jump_target(operands: List[str], modifiers: Dict[str, str],
                 labels: Dict[str, int]) -> int:
    if "target" in modifiers:
        token = modifiers["target"].upper()
    elif len(operands) == 1:
        token = operands[0]
    else:
        raise AssemblerError("JUMP requires exactly one target")
    if token.startswith("@"):
        token = token[1:]
    if token.isdigit():
        return int(token)
    if token in labels:
        return labels[token]
    raise AssemblerError(f"undefined jump target {token!r}")


def _int_modifier(modifiers: Dict[str, str], key: str,
                  default: Optional[int]) -> Optional[int]:
    if key not in modifiers:
        return default
    token = modifiers[key]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"{key}={token!r} is not an integer") from None


def _build_b_format(opcode: Opcode, operands: List[str],
                    modifiers: Dict[str, str]) -> BInstruction:
    unknown = set(modifiers) - set(_MODIFIER_ENUMS)
    if unknown:
        raise AssemblerError(f"unknown modifiers {sorted(unknown)}")
    if not 1 <= len(operands) <= 3:
        raise AssemblerError(
            f"{opcode.name} takes 1-3 operands, got {len(operands)}")
    regs = [_operand(token) for token in operands]
    while len(regs) < 3:
        regs.append(Operand.BANK)
    fields = {}
    for key in _MODIFIER_ENUMS:
        if key in modifiers:
            fields["set_mode" if key == "s" else key] = _modifier(
                key, modifiers[key])
    return BInstruction(opcode, dst=regs[0], src0=regs[1], src1=regs[2],
                        **fields)
