"""Opcode and operand-field vocabularies of the pSyncPIM ISA.

The ISA has 15 instructions in two 32-bit formats (paper Fig. 5, Tables
IV-VI): four control instructions (C format) and eleven data-movement /
binary-operation instructions (B format). This module defines the symbolic
enumerations; bit-level packing lives in :mod:`repro.isa.encoding`.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """The 15 pSyncPIM instructions (4-bit opcode space)."""

    # control (C format)
    NOP = 0
    JUMP = 1
    EXIT = 2
    CEXIT = 3      # conditional exit: terminate when chosen SpVQs are empty
    # data movement (B format, Table V)
    DMOV = 4       # dense vector bank <-> DRF
    INDMOV = 5     # scalar read from the bank at the column a SpVQ points to
    SPMOV = 6      # sparse sub-queue bank <-> SpVQ
    SPFW = 7       # force-write sparse vectors to the bank
    GTHSCT = 8     # gather/scatter between dense and sparse vectors
    # binary operations (B format, Table VI)
    SDV = 9        # scalar (.) dense vector
    SSPV = 10      # scalar (.) sparse vector
    REDUCE = 11    # iterated binary op: dense vector -> scalar
    DVDV = 12      # element-wise dense (.) dense
    SPVDV = 13     # sparse (.) dense
    SPVSPV = 14    # element-wise sparse (.) sparse

    @property
    def is_control(self) -> bool:
        return self in (Opcode.NOP, Opcode.JUMP, Opcode.EXIT, Opcode.CEXIT)

    @property
    def is_movement(self) -> bool:
        return self in (Opcode.DMOV, Opcode.INDMOV, Opcode.SPMOV,
                        Opcode.SPFW, Opcode.GTHSCT)

    @property
    def is_binary(self) -> bool:
        return self in (Opcode.SDV, Opcode.SSPV, Opcode.REDUCE,
                        Opcode.DVDV, Opcode.SPVSPV, Opcode.SPVDV)


class Operand(enum.IntEnum):
    """Register/queue operand space for the 3-bit Dst/Src fields.

    ``BANK`` designates the memory bank itself — sources read the currently
    streamed column data, destinations write it back.
    """

    BANK = 0
    SRF = 1     # 16 B scalar register
    DRF0 = 2    # 32 B dense vector registers
    DRF1 = 3
    DRF2 = 4
    SPVQ0 = 5   # 192 B sparse vector queues
    SPVQ1 = 6
    SPVQ2 = 7

    @property
    def is_dense_register(self) -> bool:
        return self in (Operand.DRF0, Operand.DRF1, Operand.DRF2)

    @property
    def is_sparse_queue(self) -> bool:
        return self in (Operand.SPVQ0, Operand.SPVQ1, Operand.SPVQ2)

    @property
    def queue_index(self) -> int:
        """0..2 for SpVQ operands; raises for anything else."""
        if not self.is_sparse_queue:
            raise ValueError(f"{self.name} is not a sparse queue")
        return int(self) - int(Operand.SPVQ0)

    @property
    def dense_index(self) -> int:
        """0..2 for DRF operands; raises for anything else."""
        if not self.is_dense_register:
            raise ValueError(f"{self.name} is not a dense register")
        return int(self) - int(Operand.DRF0)


class ValueFormat(enum.IntEnum):
    """The 4-bit Value field: element precision of the operation."""

    INT8 = 0
    INT16 = 1
    INT32 = 2
    INT64 = 3
    FP16 = 4
    FP32 = 5
    FP64 = 6

    @property
    def precision(self) -> str:
        """The :mod:`repro.config` precision name."""
        return self.name.lower()


class BinaryOp(enum.IntEnum):
    """The 4-bit Binary field: the scalar operation the VALU applies.

    Beyond +,-,x the set includes the semiring operators GraphBLAS-style
    graph kernels need (min/plus for SSSP, or/and for BFS) — the paper's
    Table VI leaves the binary operation arbitrary ("(.) is an arbitrary
    binary operation").
    """

    ADD = 0
    SUB = 1
    MUL = 2
    MIN = 3
    MAX = 4
    LAND = 5    # logical and
    LOR = 6     # logical or
    FIRST = 7   # returns the left operand (copy/select)
    SECOND = 8  # returns the right operand


class SetMode(enum.IntEnum):
    """The 1-bit S field: sparse index matching semantics (§IV-B)."""

    INTERSECTION = 0
    UNION = 1


class SubQueue(enum.IntEnum):
    """The 2-bit Idx field: which SpVQ sub-queue a movement touches."""

    ROW = 0
    COL = 1
    VAL = 2
    ALL = 3  # (row, col, value) tuples together — gather/scatter and loads


class Identity(enum.IntEnum):
    """The 2-bit Idnt field: identity element for gather/scatter."""

    ZERO = 0
    ONE = 1
    POS_INF = 2
    NEG_INF = 3

    @property
    def value_as_float(self) -> float:
        return {Identity.ZERO: 0.0, Identity.ONE: 1.0,
                Identity.POS_INF: float("inf"),
                Identity.NEG_INF: float("-inf")}[self]
