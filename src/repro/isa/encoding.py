"""Bit-level encoding of pSyncPIM instructions (paper Fig. 5).

Both formats are 4 bytes. Field layout, most-significant bit first::

    B format:  OpCode[31:28] Dst[27:25] Src0[24:22] Src1[21:19]
               Value[18:15] Binary[14:11] S[10] Idx[9:8] Idnt[7:6]
               Unused[5:0]
    C format:  OpCode[31:28] Unused[27:24] Imm0[23:16] Order[15:10]
               Imm1[9:0]

The decoder dispatches on the opcode, so a round trip through
``decode(encode(i)) == i`` holds for every valid instruction — a property
the test suite checks exhaustively with hypothesis.
"""

from __future__ import annotations

from ..errors import EncodingError
from .instructions import BInstruction, CInstruction, Instruction
from .opcodes import (BinaryOp, Identity, Opcode, Operand, SetMode, SubQueue,
                      ValueFormat)

INSTRUCTION_BYTES = 4

_B_FIELDS = (  # (name, shift, width)
    ("opcode", 28, 4),
    ("dst", 25, 3),
    ("src0", 22, 3),
    ("src1", 19, 3),
    ("value", 15, 4),
    ("binary", 11, 4),
    ("set_mode", 10, 1),
    ("idx", 8, 2),
    ("idnt", 6, 2),
)

_C_FIELDS = (
    ("opcode", 28, 4),
    ("imm0", 16, 8),
    ("order", 10, 6),
    ("imm1", 0, 10),
)


def encode(instruction: Instruction) -> int:
    """Pack an instruction into its 32-bit word."""
    if isinstance(instruction, CInstruction):
        fields, source = _C_FIELDS, instruction
    elif isinstance(instruction, BInstruction):
        fields, source = _B_FIELDS, instruction
    else:
        raise EncodingError(f"cannot encode {type(instruction).__name__}")
    word = 0
    for name, shift, width in fields:
        value = int(getattr(source, name))
        if value >= (1 << width):
            raise EncodingError(
                f"{name}={value} does not fit in {width} bits")
        word |= value << shift
    return word


def decode(word: int) -> Instruction:
    """Unpack a 32-bit word back into an instruction."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    opcode_value = (word >> 28) & 0xF
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise EncodingError(f"unknown opcode {opcode_value}") from None
    if opcode.is_control:
        return CInstruction(opcode=opcode,
                            imm0=(word >> 16) & 0xFF,
                            order=(word >> 10) & 0x3F,
                            imm1=word & 0x3FF)
    return BInstruction(opcode=opcode,
                        dst=Operand((word >> 25) & 0x7),
                        src0=Operand((word >> 22) & 0x7),
                        src1=Operand((word >> 19) & 0x7),
                        value=_enum(ValueFormat, (word >> 15) & 0xF),
                        binary=_enum(BinaryOp, (word >> 11) & 0xF),
                        set_mode=SetMode((word >> 10) & 0x1),
                        idx=SubQueue((word >> 8) & 0x3),
                        idnt=Identity((word >> 6) & 0x3))


def _enum(kind, value):
    try:
        return kind(value)
    except ValueError:
        raise EncodingError(
            f"value {value} is not a valid {kind.__name__}") from None


def encode_bytes(instruction: Instruction) -> bytes:
    """Instruction as 4 little-endian bytes (the bank write layout)."""
    return encode(instruction).to_bytes(INSTRUCTION_BYTES, "little")


def decode_bytes(blob: bytes) -> Instruction:
    """Inverse of :func:`encode_bytes`."""
    if len(blob) != INSTRUCTION_BYTES:
        raise EncodingError(
            f"expected {INSTRUCTION_BYTES} bytes, got {len(blob)}")
    return decode(int.from_bytes(blob, "little"))
