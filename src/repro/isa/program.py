"""PIM kernel programs: validated instruction sequences.

A :class:`Program` is what the host writes into a processing unit's 128 B
control register before switching to AB-PIM mode: at most 32 instructions
(Table VIII). Validation enforces the structural rules the hardware relies
on — in-range jump targets and one loop counter (ORDER value) per JUMP so
the nested-loop counters of §IV-F stay unambiguous.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import EncodingError
from .encoding import INSTRUCTION_BYTES, decode, encode
from .instructions import CInstruction, Instruction
from .opcodes import Opcode

MAX_INSTRUCTIONS = 32


class Program:
    """An immutable, validated PIM kernel program."""

    __slots__ = ("name", "_instructions")

    def __init__(self, instructions: Iterable[Instruction],
                 name: str = "kernel") -> None:
        self.name = name
        self._instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.validate()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, slot: int) -> Instruction:
        return self._instructions[slot]

    def __iter__(self):
        return iter(self._instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._instructions == other._instructions

    __hash__ = None

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instructions

    # ------------------------------------------------------------------
    def validate(self) -> "Program":
        """Enforce size, jump-target and loop-counter rules."""
        if not self._instructions:
            raise EncodingError("a program needs at least one instruction")
        if len(self._instructions) > MAX_INSTRUCTIONS:
            raise EncodingError(
                f"program {self.name!r} has {len(self._instructions)} "
                f"instructions; the control register holds "
                f"{MAX_INSTRUCTIONS}")
        orders = []
        for slot, ins in enumerate(self._instructions):
            if isinstance(ins, CInstruction) and ins.opcode is Opcode.JUMP:
                if ins.imm0 >= len(self._instructions):
                    raise EncodingError(
                        f"slot {slot}: JUMP target {ins.imm0} outside "
                        f"program of length {len(self._instructions)}")
                orders.append(ins.order)
        if len(orders) != len(set(orders)):
            raise EncodingError(
                "each JUMP needs a distinct ORDER value so its loop "
                "counter is private (paper §IV-F)")
        return self

    @property
    def has_terminator(self) -> bool:
        """True when any EXIT or CEXIT is present."""
        return any(isinstance(i, CInstruction)
                   and i.opcode in (Opcode.EXIT, Opcode.CEXIT)
                   for i in self._instructions)

    # ------------------------------------------------------------------
    def encode_words(self) -> List[int]:
        """The program as 32-bit words, one per control-register slot."""
        return [encode(i) for i in self._instructions]

    def encode_bytes(self) -> bytes:
        """The program as the little-endian byte image the host writes."""
        return b"".join(
            word.to_bytes(INSTRUCTION_BYTES, "little")
            for word in self.encode_words())

    @classmethod
    def decode_words(cls, words: Sequence[int],
                     name: str = "kernel") -> "Program":
        """Rebuild a program from encoded words."""
        return cls((decode(w) for w in words), name=name)

    def disassemble(self) -> str:
        """Human-readable listing with slot numbers."""
        lines = [f"; program {self.name} ({len(self)} instructions)"]
        for slot, ins in enumerate(self._instructions):
            lines.append(f"{slot:>3}: {ins}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program(name={self.name!r}, length={len(self)})"
