"""Processing-unit register state: SRF, DRFs and sparse vector queues.

Table VIII capacities apply: a 16 B scalar register, three 32 B dense vector
registers and three 192 B sparse vector queues, each queue split into 64 B
row/column/value sub-queues (paper §IV-B). Queue capacity in *elements* is
the binding sub-queue: 64 B of values bounds FP64 queues to 8 triples while
64 B of int16 indices bounds narrow-value queues to 32.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

import numpy as np

from ..config import ProcessingUnitConfig, element_size
from ..errors import ExecutionError

#: Index element width in the row/col sub-queues. Tile-local indices are
#: bounded by the 1 KB memory-row constraint (<= 1024), so 16 bits suffice.
INDEX_BYTES = 2


class DenseRegister:
    """One 32 B dense vector register, viewed as float64 lanes."""

    __slots__ = ("lanes", "data")

    def __init__(self, lanes: int) -> None:
        self.lanes = lanes
        self.data = np.zeros(lanes)

    def load(self, values: np.ndarray) -> None:
        """Fill the register; short inputs are zero-extended."""
        if values.size > self.lanes:
            raise ExecutionError(
                f"{values.size} lanes exceed register width {self.lanes}")
        self.data[:] = 0.0
        self.data[:values.size] = values

    def copy_values(self) -> np.ndarray:
        return self.data.copy()


class SparseQueue:
    """One sparse vector queue: FIFO of (row, col, value) triples."""

    __slots__ = ("capacity", "_items")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ExecutionError("queue capacity must be positive")
        self.capacity = capacity
        self._items: Deque[Tuple[int, int, float]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def room(self) -> int:
        return self.capacity - len(self._items)

    def push(self, row: int, col: int, value: float) -> bool:
        """Predicated push: returns False (and drops) when full."""
        if self.room <= 0:
            return False
        self._items.append((int(row), int(col), float(value)))
        return True

    def pop(self) -> Tuple[int, int, float]:
        if not self._items:
            raise ExecutionError("pop from an empty sparse queue")
        return self._items.popleft()

    def peek(self) -> Tuple[int, int, float]:
        if not self._items:
            raise ExecutionError("peek at an empty sparse queue")
        return self._items[0]

    def pop_up_to(self, count: int) -> List[Tuple[int, int, float]]:
        """Pop at most *count* triples (possibly fewer, possibly none)."""
        out = []
        for _ in range(min(count, len(self._items))):
            out.append(self._items.popleft())
        return out

    def clear(self) -> None:
        self._items.clear()


class RegisterFile:
    """The complete architectural state of one processing unit's registers."""

    def __init__(self, config: ProcessingUnitConfig, precision: str) -> None:
        self.config = config
        self.precision = precision
        value_bytes = element_size(precision)
        #: SIMD lanes of the 32 B datapath for this precision.
        self.lanes = config.datapath_bytes // value_bytes
        #: Queue capacity: binding sub-queue of the three (values vs
        #: int16 indices), each 64 B.
        self.queue_capacity = min(config.subqueue_bytes // value_bytes,
                                  config.subqueue_bytes // INDEX_BYTES)
        #: Beat group size for queue loads: one 32 B beat of values, capped
        #: by queue capacity for the narrow formats.
        self.group_size = min(self.lanes, self.queue_capacity)
        self.scalar = 0.0
        self.dense = [DenseRegister(self.lanes)
                      for _ in range(config.num_dense_registers)]
        self.queues = [SparseQueue(self.queue_capacity)
                       for _ in range(config.num_sparse_queues)]

    def reset(self) -> None:
        """Clear all register and queue contents (new kernel launch)."""
        self.scalar = 0.0
        for reg in self.dense:
            reg.data[:] = 0.0
        for queue in self.queues:
            queue.clear()

    def queues_empty(self, mask: int) -> bool:
        """True when every SpVQ selected by *mask* is empty (CEXIT test)."""
        for i, queue in enumerate(self.queues):
            if mask & (1 << i) and not queue.is_empty:
                return False
        return True
