"""The pSyncPIM processing unit: a predicated, lock-step interpreter.

One :class:`ProcessingUnit` sits next to one bank (Fig. 4). The host drives
it with broadcast memory transactions (:class:`~repro.pim.beat.Beat`); on
each transaction the unit executes instructions from its program counter up
to and including the next *bank-access* instruction, which consumes the
transaction. Register-to-register and control instructions execute between
transactions (they cost PU cycles, not memory commands).

Divergence is allowed exactly where the paper allows it:

* **Predication** (§IV-E): an instruction whose queue operand is empty (or
  whose data is `-1` padding) degrades to a NOP — the unit stays in lock
  step but performs no architectural change.
* **Per-unit columns**: IndMOV and scatter writes address the open row at a
  unit-computed column, not the broadcast column.
* **Conditional exit** (§IV-D): CEXIT terminates the unit once its stream
  is exhausted and the watched queues are drained; an exited unit keeps
  receiving transactions but never changes data.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import ProcessingUnitConfig
from ..errors import ExecutionError
from ..isa import (BInstruction, CInstruction, Opcode, Operand,
                   Program)
from . import alu
from .beat import Beat
from .memory import PADDING_INDEX, BankMemory
from .registers import RegisterFile


class UnitStats:
    """Execution counters for one unit (feeds energy/utilisation models)."""

    __slots__ = ("instructions", "alu_ops", "beats", "nop_beats")

    def __init__(self) -> None:
        self.instructions = 0
        self.alu_ops = 0
        self.beats = 0
        self.nop_beats = 0


def uses_bank(ins: BInstruction) -> bool:
    """Whether this instruction consumes a memory transaction.

    Decided per opcode semantics rather than by scanning operand fields:
    unused operand slots encode as BANK (value 0), so field scanning would
    misclassify register-only instructions like Reduce.
    """
    op = ins.opcode
    if op in (Opcode.INDMOV, Opcode.SPFW, Opcode.GTHSCT, Opcode.SPVDV):
        return True
    if op in (Opcode.SSPV, Opcode.REDUCE, Opcode.SPVSPV):
        return False
    if op in (Opcode.DMOV, Opcode.SPMOV):
        return Operand.BANK in (ins.dst, ins.src0)
    # SDV / DVDV stream their right-hand operand from the bank if asked.
    return ins.src1 is Operand.BANK


class ProcessingUnit:
    """Functional model of one bank's processing unit."""

    def __init__(self, memory: BankMemory,
                 config: ProcessingUnitConfig = ProcessingUnitConfig(),
                 precision: str = "fp64") -> None:
        self.memory = memory
        self.config = config
        self.registers = RegisterFile(config, precision)
        self.program: Optional[Program] = None
        self.pc = 0
        self.loop_counters: Dict[int, int] = {}
        self.exited = False
        #: Bitmask of SpVQs whose input stream ran out (saw padding or the
        #: end of its region); CEXIT requires exhaustion (paper §V), and
        #: SpVSpV union pass-through is only legal once the *other*
        #: operand's stream has ended.
        self.exhausted_mask = 0
        #: Bitmask of SpVQs that are queue-load destinations in this
        #: program (SpMOV/GthSct targets); CEXIT requires *their* streams
        #: exhausted, ignoring compute-only queues in its watch mask.
        self.load_targets_mask = 0
        #: Per-region element cursors for queue streams: a unit that has
        #: no queue room skips a load *without losing its place* and picks
        #: the stream up on a later transaction (§IV-E: "units capable of
        #: pushing 32 B data to the queue execute the load"). Store
        #: cursors compact queue pops densely into their output region.
        self.cursors: Dict[str, int] = {}
        #: Per-PC classification, precomputed at load_program time so the
        #: per-beat walk never re-derives it from opcode/operand fields.
        self._is_control: tuple = ()
        self._needs_beat: tuple = ()
        self.stats = UnitStats()

    # ------------------------------------------------------------------
    # host-side control
    # ------------------------------------------------------------------
    def load_program(self, program: Program,
                     reset_registers: bool = True) -> None:
        """Program the control register (host AB-mode write)."""
        if len(program) > self.config.instruction_slots:
            raise ExecutionError("program exceeds the control register")
        self.program = program
        self._is_control = tuple(isinstance(ins, CInstruction)
                                 for ins in program)
        self._needs_beat = tuple(
            False if ctrl else uses_bank(ins)
            for ctrl, ins in zip(self._is_control, program))
        self.arm(reset_registers=reset_registers)

    def arm(self, reset_registers: bool = False) -> None:
        """Reset control flow for a new kernel launch.

        Register/queue contents survive by default so multi-pass kernels
        can resume; a full reset mimics a fresh mode switch.
        """
        self.pc = 0
        self.loop_counters.clear()
        self.exited = False
        self.exhausted_mask = 0
        self.load_targets_mask = 0
        if reset_registers:
            self.registers.reset()
            self.cursors.clear()

    # ------------------------------------------------------------------
    # transaction-driven execution
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once any input stream this unit consumes has ended."""
        return self.exhausted_mask != 0

    def consume_beat(self, beat: Beat) -> None:
        """Advance through the program until one instruction uses the bank.

        Exited units ignore the transaction entirely (they still receive
        it; the data path is simply inert).
        """
        if self.program is None:
            raise ExecutionError("no program loaded")
        if self.exited:
            self.stats.nop_beats += 1
            return
        budget = 4 * len(self.program) + 8
        while budget:
            budget -= 1
            if self.pc >= len(self.program):
                # Falling off the end terminates the unit (implicit EXIT).
                self.exited = True
                self.stats.nop_beats += 1
                return
            pc = self.pc
            instruction = self.program[pc]
            self.stats.instructions += 1
            if self._is_control[pc]:
                self._execute_control(instruction)
                if self.exited:
                    self.stats.nop_beats += 1
                    return
                continue
            needs_beat = self._needs_beat[pc]
            self._execute_b(instruction, beat if needs_beat else None)
            self.pc += 1
            if needs_beat:
                self.stats.beats += 1
                return
        raise ExecutionError(
            "program made no bank access within its step budget; "
            "kernel loops must contain a bank-access instruction")

    def flush_control(self) -> None:
        """Retire trailing non-bank instructions after the stream ends.

        Register-to-register operations and control instructions need no
        memory transaction, so a unit sitting on a final Reduce/JUMP/EXIT
        sequence terminates during the host's completion poll. Execution
        stops at the first instruction that would need the bank.
        """
        if self.program is None or self.exited:
            return
        budget = 4 * len(self.program) + 8
        while budget and not self.exited:
            budget -= 1
            if self.pc >= len(self.program):
                self.exited = True
                return
            pc = self.pc
            instruction = self.program[pc]
            if self._is_control[pc]:
                self.stats.instructions += 1
                self._execute_control(instruction)
                continue
            if self._needs_beat[pc]:
                return
            self.stats.instructions += 1
            self._execute_b(instruction, None)
            self.pc += 1

    # ------------------------------------------------------------------
    # control instructions
    # ------------------------------------------------------------------
    def _execute_control(self, ins: CInstruction) -> None:
        if ins.opcode is Opcode.NOP:
            self.pc += 1
        elif ins.opcode is Opcode.EXIT:
            self.exited = True
        elif ins.opcode is Opcode.CEXIT:
            watched_inputs = self.load_targets_mask & ins.queue_mask
            if watched_inputs:
                streams_done = ((self.exhausted_mask & watched_inputs)
                                == watched_inputs)
            else:
                streams_done = self.exhausted
            if streams_done                     and self.registers.queues_empty(ins.queue_mask):
                self.exited = True
            else:
                self.pc += 1
        elif ins.opcode is Opcode.JUMP:
            taken = self.loop_counters.get(ins.order, 0) + 1
            if taken < ins.imm1:
                self.loop_counters[ins.order] = taken
                self.pc = ins.imm0
            else:
                self.loop_counters[ins.order] = 0
                self.pc += 1
        else:  # pragma: no cover - enum is closed
            raise ExecutionError(f"unhandled control {ins.opcode}")

    # ------------------------------------------------------------------
    # B-format dispatch
    # ------------------------------------------------------------------
    def _execute_b(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        handler = {
            Opcode.DMOV: self._dmov,
            Opcode.INDMOV: self._indmov,
            Opcode.SPMOV: self._spmov,
            Opcode.SPFW: self._spfw,
            Opcode.GTHSCT: self._gthsct,
            Opcode.SDV: self._sdv,
            Opcode.SSPV: self._sspv,
            Opcode.REDUCE: self._reduce,
            Opcode.DVDV: self._dvdv,
            Opcode.SPVDV: self._spvdv,
            Opcode.SPVSPV: self._spvspv,
        }[ins.opcode]
        handler(ins, beat)

    # -- data movement --------------------------------------------------
    def _dmov(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if ins.dst.is_dense_register and ins.src0 is Operand.BANK:
            region = self.memory.dense(beat.region)
            rf.dense[ins.dst.dense_index].load(
                region.read(beat.index * rf.lanes, rf.lanes))
        elif ins.dst is Operand.BANK and ins.src0.is_dense_register:
            region = self.memory.dense(beat.region)
            region.write(beat.index * rf.lanes,
                         rf.dense[ins.src0.dense_index].data)
        elif ins.dst is Operand.SRF and ins.src0 is Operand.BANK:
            region = self.memory.dense(beat.region)
            rf.scalar = region.read_scalar(beat.index)
        elif ins.dst is Operand.BANK and ins.src0 is Operand.SRF:
            region = self.memory.dense(beat.region)
            region.write(beat.index, np.array([rf.scalar]))
        elif ins.dst.is_dense_register and ins.src0.is_dense_register:
            rf.dense[ins.dst.dense_index].data[:] = (
                rf.dense[ins.src0.dense_index].data)
        else:
            raise ExecutionError(
                f"DMOV {ins.dst.name} <- {ins.src0.name} is not a legal "
                "combination")

    def _indmov(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        """Scalar read at the column the source SpVQ's head points to."""
        rf = self.registers
        if ins.dst is not Operand.SRF or ins.src0 is not Operand.BANK \
                or not ins.src1.is_sparse_queue:
            raise ExecutionError("IndMOV form is SRF <- BANK[SpVQ.col]")
        queue = rf.queues[ins.src1.queue_index]
        if queue.is_empty:
            return  # predicated NOP: nothing to point with
        _, col, _ = queue.peek()
        if col == PADDING_INDEX:
            return
        region = self.memory.dense(beat.region)
        rf.scalar = region.read_scalar(col)

    def _spmov(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            queue = rf.queues[ins.dst.queue_index]
            bit = 1 << ins.dst.queue_index
            self.load_targets_mask |= bit
            if queue.room < rf.group_size:
                return  # predicated NOP: no room, keep the stream place
            region = self.memory.triples(beat.region)
            cursor = self.cursors.get(beat.region, 0)
            if cursor % rf.group_size:
                raise ExecutionError("queue stream cursor misaligned")
            rows, cols, vals = region.read_group(cursor // rf.group_size,
                                                 rf.group_size)
            self.cursors[beat.region] = cursor + rf.group_size
            if rows.size < rf.group_size:
                self.exhausted_mask |= bit
            if cursor + rows.size >= len(region):
                self.exhausted_mask |= bit
            for r, c, v in zip(rows, cols, vals):
                if r == PADDING_INDEX:
                    self.exhausted_mask |= bit
                    continue
                queue.push(int(r), int(c), float(v))
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            queue = rf.queues[ins.src0.queue_index]
            items = queue.pop_up_to(rf.group_size)
            if items:
                rows, cols, vals = (np.asarray(seq) for seq in zip(*items))
                region = self.memory.triples(beat.region)
                cursor = self.cursors.get(beat.region, 0)
                region.write_elements(cursor,
                                      rows.astype(np.int64),
                                      cols.astype(np.int64),
                                      vals.astype(np.float64))
                self.cursors[beat.region] = cursor + len(items)
        else:
            raise ExecutionError("SpMOV moves between a SpVQ and the bank")

    def _spfw(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        """Force-write: drain the whole queue to the bank at once."""
        rf = self.registers
        if ins.dst is not Operand.BANK or not ins.src0.is_sparse_queue:
            raise ExecutionError("SpFW form is BANK <- SpVQ")
        queue = rf.queues[ins.src0.queue_index]
        items = queue.pop_up_to(queue.capacity)
        if items:
            rows, cols, vals = (np.asarray(seq) for seq in zip(*items))
            region = self.memory.triples(beat.region)
            cursor = self.cursors.get(beat.region, 0)
            region.write_elements(cursor,
                                  rows.astype(np.int64),
                                  cols.astype(np.int64),
                                  vals.astype(np.float64))
            self.cursors[beat.region] = cursor + len(items)

    def _gthsct(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        identity_value = ins.idnt.value_as_float
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            # gather: dense window -> sparse triples (index, index, value).
            # Windows are group-sized so a fully dense window still fits
            # the queue (narrow formats have more lanes than queue slots).
            region = self.memory.dense(beat.region)
            base = beat.index * rf.group_size
            window = region.read(base, rf.group_size)
            queue = rf.queues[ins.dst.queue_index]
            self.load_targets_mask |= 1 << ins.dst.queue_index
            for lane, value in enumerate(window):
                if value != identity_value:
                    queue.push(base + lane, base + lane, float(value))
            if base + rf.group_size >= len(region):
                self.exhausted_mask |= 1 << ins.dst.queue_index
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            # scatter: triples -> dense region at their own indices
            region = self.memory.dense(beat.region)
            queue = rf.queues[ins.src0.queue_index]
            for row, _, value in queue.pop_up_to(rf.group_size):
                if 0 <= row < len(region):
                    region.data[row] = value
        else:
            raise ExecutionError("GthSct transforms between BANK and a SpVQ")

    # -- arithmetic ------------------------------------------------------
    def _sdv(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if not ins.dst.is_dense_register or ins.src0 is not Operand.SRF:
            raise ExecutionError("SDV form is DRF <- SRF (.) vector")
        if ins.src1 is Operand.BANK:
            region = self.memory.dense(beat.region)
            operand = region.read(beat.index * rf.lanes, rf.lanes)
        elif ins.src1.is_dense_register:
            operand = rf.dense[ins.src1.dense_index].data
        else:
            raise ExecutionError("SDV vector operand must be DRF or BANK")
        result = alu.apply(ins.binary, rf.scalar, operand)
        rf.dense[ins.dst.dense_index].load(np.asarray(result, dtype=float))
        self.stats.alu_ops += rf.lanes

    def _sspv(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        """Scalar (.) one sparse element: pop src1, push to dst."""
        rf = self.registers
        if not ins.dst.is_sparse_queue or ins.src0 is not Operand.SRF \
                or not ins.src1.is_sparse_queue:
            raise ExecutionError("SSpV form is SpVQ <- SRF (.) SpVQ")
        src = rf.queues[ins.src1.queue_index]
        if src.is_empty:
            return  # predicated NOP
        row, col, value = src.pop()
        result = float(alu.apply(ins.binary, rf.scalar, value))
        rf.queues[ins.dst.queue_index].push(row, col, result)
        self.stats.alu_ops += 1

    def _reduce(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if ins.dst is not Operand.SRF:
            raise ExecutionError("Reduce accumulates into SRF")
        if ins.src0.is_dense_register:
            values = rf.dense[ins.src0.dense_index].data
            rf.scalar = alu.reduce_array(ins.binary, values, rf.scalar)
            self.stats.alu_ops += values.size
        elif ins.src0.is_sparse_queue:
            items = rf.queues[ins.src0.queue_index].pop_up_to(rf.group_size)
            values = np.array([v for _, _, v in items])
            rf.scalar = alu.reduce_array(ins.binary, values, rf.scalar)
            self.stats.alu_ops += values.size
        else:
            raise ExecutionError("Reduce source must be a DRF or SpVQ")

    def _dvdv(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if not ins.dst.is_dense_register \
                or not ins.src0.is_dense_register:
            raise ExecutionError("DVDV form is DRF <- DRF (.) vector")
        left = rf.dense[ins.src0.dense_index].data
        if ins.src1 is Operand.BANK:
            region = self.memory.dense(beat.region)
            right = region.read(beat.index * rf.lanes, rf.lanes)
        elif ins.src1.is_dense_register:
            right = rf.dense[ins.src1.dense_index].data
        else:
            raise ExecutionError("DVDV right operand must be DRF or BANK")
        result = alu.apply(ins.binary, left, right)
        rf.dense[ins.dst.dense_index].load(np.asarray(result, dtype=float))
        self.stats.alu_ops += rf.lanes

    def _spvdv(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        rf = self.registers
        if ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            # scatter-accumulate one element into the open output row:
            # bank[row] = bank[row] (.) value  — the unit computes the
            # column itself (limited divergence under the broadcast beat).
            src = rf.queues[ins.src0.queue_index]
            if src.is_empty:
                return  # predicated NOP (still consumed the transaction)
            row, _, value = src.pop()
            region = self.memory.dense(beat.region)
            if 0 <= row < len(region):
                region.data[row] = float(
                    alu.apply(ins.binary, region.data[row], value))
            self.stats.alu_ops += 1
        elif ins.dst.is_sparse_queue and ins.src0.is_sparse_queue \
                and ins.src1 is Operand.BANK:
            # element (.) dense-at-its-own-index -> sparse result
            src = rf.queues[ins.src0.queue_index]
            if src.is_empty:
                return
            row, col, value = src.pop()
            region = self.memory.dense(beat.region)
            gathered = region.read_scalar(row)
            rf.queues[ins.dst.queue_index].push(
                row, col, float(alu.apply(ins.binary, value, gathered)))
            self.stats.alu_ops += 1
        else:
            raise ExecutionError(
                "SpVDV forms: BANK <- SpVQ (.) BANK (scatter) or "
                "SpVQ <- SpVQ (.) BANK (gathered)")

    def _spvspv(self, ins: BInstruction, beat: Optional[Beat]) -> None:
        """Index-matched element-wise op between two sparse queues.

        One comparison step per execution: inspects the heads of both
        queues ordered by index, emits at most one result element. The S
        field selects intersection (skip unmatched) or union (pass
        unmatched through combined with the identity).
        """
        rf = self.registers
        if not (ins.dst.is_sparse_queue and ins.src0.is_sparse_queue
                and ins.src1.is_sparse_queue):
            raise ExecutionError("SpVSpV operates on three sparse queues")
        qa = rf.queues[ins.src0.queue_index]
        qb = rf.queues[ins.src1.queue_index]
        out = rf.queues[ins.dst.queue_index]
        union_mode = bool(ins.set_mode)
        ident = ins.idnt.value_as_float
        if qa.is_empty and qb.is_empty:
            return
        if qa.is_empty or qb.is_empty:
            # one stream is merely between batches unless its region has
            # been fully consumed: stall (predicated NOP) until then, or
            # the merge would emit an index its refill still holds
            a_empty = qa.is_empty
            empty_bit = 1 << (ins.src0.queue_index if a_empty
                              else ins.src1.queue_index)
            if not self.exhausted_mask & empty_bit:
                return
            if union_mode:
                # decide operand order before popping: the pop may drain
                # qa, and re-reading is_empty afterwards would flip the
                # operands on a stream's final element
                queue = qb if a_empty else qa
                row, col, value = queue.pop()
                left, right = ((ident, value) if a_empty
                               else (value, ident))
                out.push(row, col,
                         float(alu.apply(ins.binary, left, right)))
                self.stats.alu_ops += 1
            else:
                (qb if qa.is_empty else qa).pop()
            return
        ra, ca, va = qa.peek()
        rb, cb, vb = qb.peek()
        if ra == rb:
            qa.pop()
            qb.pop()
            out.push(ra, ca, float(alu.apply(ins.binary, va, vb)))
            self.stats.alu_ops += 1
        elif ra < rb:
            qa.pop()
            if union_mode:
                out.push(ra, ca, float(alu.apply(ins.binary, va, ident)))
                self.stats.alu_ops += 1
        else:
            qb.pop()
            if union_mode:
                out.push(rb, cb, float(alu.apply(ins.binary, ident, vb)))
                self.stats.alu_ops += 1
