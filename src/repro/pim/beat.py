"""Beats: the functional face of broadcast memory transactions.

In AB-PIM mode every memory transaction the host issues is broadcast to all
banks and advances each processing unit to (and through) its next
bank-access instruction (paper Fig. 1). The functional tier represents one
such transaction as a :class:`Beat`: the named region it streams and the
beat-group index within it. The timing tier independently expands the same
transaction stream into physical ACT/RD/WR command traces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Beat:
    """One broadcast memory transaction in AB-PIM mode.

    ``region`` names the bank region the transaction streams; ``index`` is
    the beat-group ordinal within that region (each group is one 32 B
    datapath beat). ``write`` distinguishes WR-driven from RD-driven
    execution steps. Instructions that compute their own column (IndMOV,
    scatter stores) ignore ``index`` — that is exactly the limited
    divergence pSyncPIM permits: same open row, per-unit column.
    """

    region: str
    index: int = 0
    write: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("beat index must be non-negative")
