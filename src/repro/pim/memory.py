"""Functional bank memory: named, typed regions inside one DRAM bank.

The functional tier of the simulator addresses bank contents through *named
regions* (matrix tile, input-vector tile, output tile, ...) instead of raw
row/column coordinates. This keeps kernel semantics independent of physical
placement; the timing tier separately lays the same regions out onto memory
rows (:mod:`repro.core.mapping`) to produce command traces. The split
mirrors classic performance-model practice: one model computes *what*, the
other *how long*.

Two region kinds exist:

* :class:`DenseRegion` — a 1-D float64 array (vector tiles, dense matrix
  tiles flattened row-major).
* :class:`TripleRegion` — parallel (row, col, value) arrays holding a COO
  stream, padded with ``row = -1`` entries so that every bank can be
  streamed for the same number of beats (paper §V, "Conditional Exit
  Detection": empty space in index arrays is filled with -1).
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..errors import CapacityError, ExecutionError

#: Index value that marks padding in COO streams (paper §V).
PADDING_INDEX = -1


class DenseRegion:
    """A dense, element-addressed region of one bank."""

    __slots__ = ("name", "data")

    def __init__(self, name: str, data: np.ndarray) -> None:
        self.name = name
        # np.array always copies: a region owns its storage, so two banks
        # can never alias one buffer (host writes cross the interface).
        self.data = np.array(data, dtype=np.float64)
        if self.data.ndim != 1:
            raise ExecutionError("dense regions are one-dimensional")

    def __len__(self) -> int:
        return int(self.data.size)

    def read(self, start: int, count: int) -> np.ndarray:
        """Read *count* elements from *start*; out-of-range reads as zeros.

        Beyond-the-end reads model streaming past a shorter bank's data
        under lock-step control — the hardware returns whatever the row
        holds; the simulator returns zeros, which every kernel treats as
        identity padding.
        """
        if start < 0 or count < 0:
            raise ExecutionError("negative dense region access")
        out = np.zeros(count)
        end = min(start + count, self.data.size)
        if start < end:
            out[:end - start] = self.data[start:end]
        return out

    def write(self, start: int, values: np.ndarray) -> None:
        """Write *values* from *start*; beyond-the-end writes are dropped."""
        if start < 0:
            raise ExecutionError("negative dense region access")
        end = min(start + values.size, self.data.size)
        if start < end:
            self.data[start:end] = values[:end - start]

    def read_scalar(self, index: int) -> float:
        """Single-element read (IndMOV); out of range reads zero."""
        if 0 <= index < self.data.size:
            return float(self.data[index])
        return 0.0

    def accumulate(self, indices: np.ndarray, values: np.ndarray,
                   op) -> None:
        """Predicated scatter ``data[i] = op(data[i], v)`` per element.

        Out-of-range indices are dropped (the predicated write never
        happens), matching the exited/padded-unit semantics.
        """
        ok = (indices >= 0) & (indices < self.data.size)
        idx = indices[ok]
        vals = values[ok]
        for i, v in zip(idx, vals):
            self.data[i] = op(self.data[i], v)


class TripleRegion:
    """A COO stream region: parallel (row, col, value) arrays with padding."""

    __slots__ = ("name", "rows", "cols", "vals")

    def __init__(self, name: str, rows: np.ndarray, cols: np.ndarray,
                 vals: np.ndarray) -> None:
        self.name = name
        # copies, for the same ownership reason as DenseRegion
        self.rows = np.array(rows, dtype=np.int64)
        self.cols = np.array(cols, dtype=np.int64)
        self.vals = np.array(vals, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ExecutionError("triple region arrays must align")

    def __len__(self) -> int:
        return int(self.rows.size)

    @property
    def valid_count(self) -> int:
        """Number of non-padding elements."""
        return int(np.sum(self.rows != PADDING_INDEX))

    def read_group(self, group: int, size: int):
        """Elements of beat *group* (``[group*size, group*size + size)``).

        Returns (rows, cols, vals) possibly shorter than *size* at the end
        of the region. Reads past the end return empty arrays (pure
        padding), never an error: under all-bank control the stream length
        is the maximum over banks.
        """
        if group < 0 or size <= 0:
            raise ExecutionError("bad triple group access")
        lo = group * size
        hi = min(lo + size, self.rows.size)
        if lo >= hi:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0)
        return (self.rows[lo:hi], self.cols[lo:hi], self.vals[lo:hi])

    def write_elements(self, start: int, rows: np.ndarray,
                       cols: np.ndarray, vals: np.ndarray) -> None:
        """Write elements starting at element offset *start* (queue pops)."""
        lo = start
        hi = lo + rows.size
        if hi > self.rows.size:
            raise CapacityError(
                f"triple region {self.name!r} overflow: writing "
                f"[{lo}, {hi}) into {self.rows.size} slots")
        self.rows[lo:hi] = rows
        self.cols[lo:hi] = cols
        self.vals[lo:hi] = vals


Region = Union[DenseRegion, TripleRegion]


class BankMemory:
    """All named regions resident in one bank."""

    def __init__(self) -> None:
        self._regions: Dict[str, Region] = {}

    def add_dense(self, name: str, data: np.ndarray) -> DenseRegion:
        """Install a dense region (replacing any previous *name*)."""
        region = DenseRegion(name, data)
        self._regions[name] = region
        return region

    def add_triples(self, name: str, rows: np.ndarray, cols: np.ndarray,
                    vals: np.ndarray) -> TripleRegion:
        """Install a COO stream region (replacing any previous *name*)."""
        region = TripleRegion(name, rows, cols, vals)
        self._regions[name] = region
        return region

    def dense(self, name: str) -> DenseRegion:
        region = self._get(name)
        if not isinstance(region, DenseRegion):
            raise ExecutionError(f"region {name!r} is not dense")
        return region

    def triples(self, name: str) -> TripleRegion:
        region = self._get(name)
        if not isinstance(region, TripleRegion):
            raise ExecutionError(f"region {name!r} is not a COO stream")
        return region

    def _get(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise ExecutionError(f"bank has no region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region_names(self):
        return tuple(self._regions)


def padded_triples(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                   total: int):
    """Pad COO arrays with ``-1`` index entries up to *total* elements."""
    n = rows.size
    if total < n:
        raise CapacityError(f"cannot pad {n} elements down to {total}")
    pad = total - n
    rows_out = np.concatenate(
        [rows, np.full(pad, PADDING_INDEX, dtype=np.int64)])
    cols_out = np.concatenate(
        [cols, np.full(pad, PADDING_INDEX, dtype=np.int64)])
    vals_out = np.concatenate([vals, np.zeros(pad)])
    return rows_out, cols_out, vals_out
