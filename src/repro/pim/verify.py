"""Static program analysis: beat signatures and structural checks.

A kernel program and its transaction stream are a contract: the stream
must supply exactly the memory transactions the program's bank-access
instructions will consume, in order. :func:`beat_signature` executes a
program *symbolically* — control flow only, loop counters taken at face
value, every predicated path assumed live — and returns the ordered list
of bank accesses it will perform. Drivers use it to validate their beat
generators before launch, and the test-suite uses it to pin each kernel's
schedule shape.

The signature is an upper bound: conditional exits can only shorten the
real stream, never lengthen or reorder it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ExecutionError
from ..isa import BInstruction, CInstruction, Opcode, Program
from .unit import uses_bank

#: Safety bound on symbolic execution (total instruction visits).
_MAX_STEPS = 1_000_000


@dataclass(frozen=True)
class BeatSlot:
    """One bank access the program will request."""

    slot: int           # instruction slot performing the access
    opcode: str         # mnemonic
    write: bool         # does the access write the bank?

    def __str__(self) -> str:
        direction = "WR" if self.write else "RD"
        return f"{self.opcode}@{self.slot}:{direction}"


def _writes_bank(ins: BInstruction) -> bool:
    """Whether the instruction's bank access is (or includes) a write."""
    from ..isa import Operand
    if ins.opcode is Opcode.SPVDV:
        # scatter-accumulate read-modify-writes the output row
        return ins.dst is Operand.BANK
    if ins.opcode in (Opcode.SPFW,):
        return True
    if ins.opcode is Opcode.GTHSCT:
        return ins.dst is Operand.BANK
    return ins.dst is Operand.BANK


def beat_signature(program: Program) -> List[BeatSlot]:
    """The ordered bank accesses of one full pass of *program*.

    Loops unroll by their JUMP counts; EXIT terminates; CEXIT is treated
    as not taken (the longest possible stream).
    """
    signature: List[BeatSlot] = []
    counters = {}
    pc = 0
    steps = 0
    while pc < len(program):
        steps += 1
        if steps > _MAX_STEPS:
            raise ExecutionError(
                "symbolic execution exceeded its step budget; "
                "check the program's loop counts")
        ins = program[pc]
        if isinstance(ins, CInstruction):
            if ins.opcode is Opcode.EXIT:
                break
            if ins.opcode is Opcode.JUMP:
                taken = counters.get((pc, ins.order), 0) + 1
                if taken < ins.imm1:
                    counters[(pc, ins.order)] = taken
                    pc = ins.imm0
                else:
                    counters[(pc, ins.order)] = 0
                    pc += 1
            else:  # NOP / CEXIT (not taken)
                pc += 1
            continue
        if uses_bank(ins):
            signature.append(BeatSlot(slot=pc, opcode=ins.opcode.name,
                                      write=_writes_bank(ins)))
        pc += 1
    return signature


def expected_beats(program: Program) -> int:
    """Number of transactions one full pass of *program* consumes."""
    return len(beat_signature(program))


def check_stream_length(program: Program, provided: int) -> None:
    """Raise if a driver's stream cannot satisfy the program's demand.

    The stream may be *longer* (trailing transactions are ignored once
    all units exit) but never shorter than the longest possible pass.
    """
    needed = expected_beats(program)
    if provided < needed:
        raise ExecutionError(
            f"beat stream supplies {provided} transactions but program "
            f"{program.name!r} can consume {needed}")
