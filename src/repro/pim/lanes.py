"""Lane-stacked state containers for the vectorized engine.

The scalar tier models each bank's state as independent Python objects
(:mod:`repro.pim.memory`, :mod:`repro.pim.registers`). The lane engine
stores the same state *stacked across banks* — one numpy row per bank —
so a broadcast beat touches every bank with a handful of masked array
operations instead of a Python loop.

Equivalence rules these containers uphold (and the differential tests
check) so results stay bitwise identical to the scalar engine:

* Dense regions zero-fill reads past a bank's own length; the 2-D store
  keeps the padding strip of shorter banks at exactly 0.0 by masking
  every write against the per-lane length.
* Triple (COO) regions clip group reads at each bank's length and raise
  :class:`~repro.errors.CapacityError` on write overflow, like the
  scalar :class:`~repro.pim.memory.TripleRegion`.
* Queues are fixed-capacity circular buffers with FIFO order per lane;
  pushes to a full lane drop silently (the scalar predicated push).

All value storage is float64 and index storage int64, matching the
scalar tier exactly (the Value format governs lane counts and queue
capacities, not the reference numerics).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import CapacityError, ExecutionError
from .memory import DenseRegion, TripleRegion


class LaneQueue:
    """One sparse vector queue per lane, as circular (row, col, val) bufs."""

    __slots__ = ("capacity", "rows", "cols", "vals", "head", "count")

    def __init__(self, num_lanes: int, capacity: int) -> None:
        if capacity <= 0:
            raise ExecutionError("queue capacity must be positive")
        self.capacity = capacity
        self.rows = np.zeros((num_lanes, capacity), dtype=np.int64)
        self.cols = np.zeros((num_lanes, capacity), dtype=np.int64)
        self.vals = np.zeros((num_lanes, capacity))
        self.head = np.zeros(num_lanes, dtype=np.int64)
        self.count = np.zeros(num_lanes, dtype=np.int64)

    def push(self, lanes: np.ndarray, rows, cols, vals) -> None:
        """Predicated push into *lanes*; full lanes drop silently."""
        if lanes.size == 0:
            return
        rows = np.broadcast_to(rows, lanes.shape)
        cols = np.broadcast_to(cols, lanes.shape)
        vals = np.broadcast_to(vals, lanes.shape)
        ok = self.count[lanes] < self.capacity
        if not ok.all():
            lanes = lanes[ok]
            rows, cols, vals = rows[ok], cols[ok], vals[ok]
            if lanes.size == 0:
                return
        pos = (self.head[lanes] + self.count[lanes]) % self.capacity
        self.rows[lanes, pos] = rows
        self.cols[lanes, pos] = cols
        self.vals[lanes, pos] = vals
        self.count[lanes] += 1

    def pop(self, lanes: np.ndarray):
        """Pop the head triple of each lane (caller ensures non-empty)."""
        pos = self.head[lanes]
        r = self.rows[lanes, pos]
        c = self.cols[lanes, pos]
        v = self.vals[lanes, pos]
        self.head[lanes] = (pos + 1) % self.capacity
        self.count[lanes] -= 1
        return r, c, v

    def peek(self, lanes: np.ndarray):
        pos = self.head[lanes]
        return (self.rows[lanes, pos], self.cols[lanes, pos],
                self.vals[lanes, pos])

    def pop_up_to(self, lanes: np.ndarray, limit: int):
        """Pop at most *limit* triples per lane, in FIFO order.

        Returns ``(rows2d, cols2d, vals2d, popped)``: the 2-D arrays are
        ``(len(lanes), max(popped))`` gathers in pop order; entries at
        column ``j >= popped[i]`` are unspecified.
        """
        popped = np.minimum(self.count[lanes], limit)
        width = int(popped.max()) if lanes.size else 0
        pos = (self.head[lanes][:, None]
               + np.arange(width)) % self.capacity
        rows_idx = lanes[:, None]
        r = self.rows[rows_idx, pos]
        c = self.cols[rows_idx, pos]
        v = self.vals[rows_idx, pos]
        self.head[lanes] = (self.head[lanes] + popped) % self.capacity
        self.count[lanes] -= popped
        return r, c, v, popped

    def clear(self) -> None:
        self.head[:] = 0
        self.count[:] = 0

    def snapshot(self, lane: int):
        """FIFO contents of one lane as (row, col, value) tuples."""
        n = int(self.count[lane])
        pos = (int(self.head[lane]) + np.arange(n)) % self.capacity
        return [(int(self.rows[lane, p]), int(self.cols[lane, p]),
                 float(self.vals[lane, p])) for p in pos]


class DenseLanes:
    """A dense region stacked over lanes: (L, width) data + lane lengths."""

    __slots__ = ("name", "data", "lengths")

    def __init__(self, name: str, per_lane) -> None:
        self.name = name
        arrays = [np.asarray(a, dtype=np.float64) for a in per_lane]
        for a in arrays:
            if a.ndim != 1:
                raise ExecutionError("dense regions are one-dimensional")
        self.lengths = np.array([a.size for a in arrays], dtype=np.int64)
        width = int(self.lengths.max()) if arrays else 0
        self.data = np.zeros((len(arrays), width))
        for i, a in enumerate(arrays):
            self.data[i, :a.size] = a

    @property
    def width(self) -> int:
        return self.data.shape[1]

    def read_window(self, start: int, count: int,
                    lanes: np.ndarray) -> np.ndarray:
        """Per-lane window read; out-of-range positions read as zeros.

        The padding strip of shorter lanes is kept at 0.0 by the write
        paths, so a plain slice already matches the scalar zero-fill.
        """
        if start < 0 or count < 0:
            raise ExecutionError("negative dense region access")
        out = np.zeros((lanes.size, count))
        end = min(start + count, self.width)
        if start < end:
            out[:, :end - start] = self.data[lanes, start:end]
        return out

    def write_window(self, start: int, values: np.ndarray,
                     lanes: np.ndarray) -> None:
        """Per-lane window write; beyond-own-length writes are dropped."""
        if start < 0:
            raise ExecutionError("negative dense region access")
        end = min(start + values.shape[1], self.width)
        if start >= end:
            return
        cols = np.arange(start, end)
        block = self.data[lanes[:, None], cols]
        mask = cols[None, :] < self.lengths[lanes, None]
        np.copyto(block, values[:, :end - start], where=mask)
        self.data[lanes[:, None], cols] = block

    def read_scalar(self, index: np.ndarray,
                    lanes: np.ndarray) -> np.ndarray:
        """Per-lane single-element read; out of range reads zero."""
        index = np.broadcast_to(index, lanes.shape)
        ok = (index >= 0) & (index < self.lengths[lanes])
        out = np.zeros(lanes.size)
        out[ok] = self.data[lanes[ok], index[ok]]
        return out

    def write_scalar(self, index, values: np.ndarray,
                     lanes: np.ndarray) -> None:
        """Per-lane single-element write; out-of-length writes dropped."""
        index = np.broadcast_to(index, lanes.shape)
        ok = (index >= 0) & (index < self.lengths[lanes])
        self.data[lanes[ok], index[ok]] = values[ok]

    def snapshot(self, lane: int) -> DenseRegion:
        """One lane's region as a scalar-tier DenseRegion copy."""
        return DenseRegion(self.name,
                           self.data[lane, :self.lengths[lane]])


class TripleLanes:
    """A COO stream region stacked over lanes, with per-lane lengths."""

    __slots__ = ("name", "rows", "cols", "vals", "lengths")

    def __init__(self, name: str, per_lane) -> None:
        self.name = name
        triples = []
        for rows, cols, vals in per_lane:
            r = np.asarray(rows, dtype=np.int64)
            c = np.asarray(cols, dtype=np.int64)
            v = np.asarray(vals, dtype=np.float64)
            if not (r.shape == c.shape == v.shape):
                raise ExecutionError("triple region arrays must align")
            triples.append((r, c, v))
        self.lengths = np.array([r.size for r, _, _ in triples],
                                dtype=np.int64)
        width = int(self.lengths.max()) if triples else 0
        self.rows = np.zeros((len(triples), width), dtype=np.int64)
        self.cols = np.zeros((len(triples), width), dtype=np.int64)
        self.vals = np.zeros((len(triples), width))
        for i, (r, c, v) in enumerate(triples):
            self.rows[i, :r.size] = r
            self.cols[i, :c.size] = c
            self.vals[i, :v.size] = v

    @property
    def width(self) -> int:
        return self.rows.shape[1]

    def read_group(self, cursors: np.ndarray, size: int,
                   lanes: np.ndarray):
        """Group read at per-lane element *cursors*, clipped per lane.

        Returns ``(rows2d, cols2d, vals2d, lens)``; entries at column
        ``j >= lens[i]`` are unspecified (the scalar read returns shorter
        arrays there).
        """
        lens = np.clip(self.lengths[lanes] - cursors, 0, size)
        if self.width == 0:
            shape = (lanes.size, size)
            return (np.zeros(shape, dtype=np.int64),
                    np.zeros(shape, dtype=np.int64),
                    np.zeros(shape), lens)
        pos = np.minimum(cursors[:, None] + np.arange(size),
                         self.width - 1)
        idx = lanes[:, None]
        return self.rows[idx, pos], self.cols[idx, pos], \
            self.vals[idx, pos], lens

    def write_at(self, cursors: np.ndarray, rows2d, cols2d, vals2d,
                 counts: np.ndarray, lanes: np.ndarray) -> None:
        """Write ``counts[i]`` elements at each lane's cursor offset."""
        over = cursors + counts > self.lengths[lanes]
        if over.any():
            i = int(np.flatnonzero(over)[0])
            raise CapacityError(
                f"triple region {self.name!r} overflow: writing "
                f"[{int(cursors[i])}, {int(cursors[i] + counts[i])}) "
                f"into {int(self.lengths[lanes[i]])} slots")
        for j in range(int(counts.max()) if lanes.size else 0):
            live = counts > j
            if not live.any():
                break
            tgt = lanes[live]
            pos = cursors[live] + j
            self.rows[tgt, pos] = rows2d[live, j]
            self.cols[tgt, pos] = cols2d[live, j]
            self.vals[tgt, pos] = vals2d[live, j]

    def snapshot(self, lane: int) -> TripleRegion:
        """One lane's stream as a scalar-tier TripleRegion copy."""
        n = self.lengths[lane]
        return TripleRegion(self.name, self.rows[lane, :n],
                            self.cols[lane, :n], self.vals[lane, :n])


class LaneMemory:
    """All named regions of every bank, stacked lane-wise."""

    def __init__(self, num_lanes: int) -> None:
        self.num_lanes = num_lanes
        self._regions: Dict[str, object] = {}

    def add_dense(self, name: str, per_lane) -> DenseLanes:
        if len(per_lane) != self.num_lanes:
            raise ExecutionError("need one array per bank")
        region = DenseLanes(name, per_lane)
        self._regions[name] = region
        return region

    def add_triples(self, name: str, per_lane) -> TripleLanes:
        if len(per_lane) != self.num_lanes:
            raise ExecutionError("need one (rows, cols, vals) per bank")
        region = TripleLanes(name, per_lane)
        self._regions[name] = region
        return region

    def dense(self, name: str) -> DenseLanes:
        region = self._get(name)
        if not isinstance(region, DenseLanes):
            raise ExecutionError(f"region {name!r} is not dense")
        return region

    def triples(self, name: str) -> TripleLanes:
        region = self._get(name)
        if not isinstance(region, TripleLanes):
            raise ExecutionError(f"region {name!r} is not a COO stream")
        return region

    def _get(self, name: str):
        try:
            return self._regions[name]
        except KeyError:
            raise ExecutionError(f"bank has no region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region_names(self) -> Tuple[str, ...]:
        return tuple(self._regions)
