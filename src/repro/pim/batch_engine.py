"""Batched execution tier: N same-program jobs as jobs x banks lanes.

:class:`BatchEngine` extends the jobs dimension of the lane engine. Where
:class:`~repro.pim.lane_engine.LaneEngine` stacks the banks of *one* job
as numpy lanes, the batch engine stacks ``num_jobs`` whole jobs — every
piece of architectural state (scalar registers, dense registers, circular
sparse queues, stream cursors, predication/exit/exhaustion masks) gains a
leading jobs axis, flattened job-major into ``num_jobs * num_banks``
lanes, and each broadcast beat executes every job in the same handful of
masked array passes.

Why stacking jobs is sound: lanes never interact. Every lane-engine
handler reads and writes per-lane state under per-lane masks; the only
shared state is the program counter and the JUMP loop counters, and the
PC walk is *data independent* — JUMP counts are immediates, CEXIT removes
lanes from the active cohort but the surviving cohort's ``pc`` advances
identically, and an exited lane only accumulates NOP beats, never
architectural state. Two jobs running the same program and beat stream
therefore walk the same PC sequence they would have walked alone, and the
final registers, queues, bank memory and exit state of each job are
bitwise-identical to a per-job :class:`LaneEngine` run. The differential
suite (``tests/test_pim_batch_engine.py``) verifies exactly that, against
both the per-job lane engine and the scalar oracle.

What is *not* preserved: beat accounting. A batch keeps consuming beats
until the slowest job exits, so a fast job's NOP/beat counters include
trailing broadcasts its solo run never saw. Stats are diagnostics, not
architectural state, and are deliberately excluded from the bitwise
contract.

The scalar :class:`~repro.pim.engine.AllBankEngine` remains the sole
semantics oracle; the batch tier is selected with ``PSYNCPIM_BATCH``
(see :func:`repro.config.resolve_batch`) and is always checked against
the per-job path it accelerates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import ProcessingUnitConfig
from ..errors import ExecutionError
from .. import obs
from .lane_engine import LaneBankView, LaneEngine, LaneUnitView


class BatchEngine(LaneEngine):
    """Lock-step broadcast execution over ``num_jobs * num_banks`` lanes.

    Lane ``job * num_banks + bank`` holds bank *bank* of job *job*; the
    ``*_jobs`` views expose the same arrays with an explicit leading jobs
    axis. All jobs must share one program and one beat stream (same
    template); their input data is free to differ per job and per bank.
    """

    def __init__(self, num_jobs: int, num_banks: int,
                 config: ProcessingUnitConfig = ProcessingUnitConfig(),
                 precision: str = "fp64",
                 check_lockstep: bool = True) -> None:
        if num_jobs <= 0:
            raise ExecutionError("need at least one job")
        super().__init__(num_jobs * num_banks, config=config,
                         precision=precision,
                         check_lockstep=check_lockstep)
        self.num_jobs = num_jobs
        self.num_banks = num_banks

    # ------------------------------------------------------------------
    # jobs-axis views of the flat lane state
    # ------------------------------------------------------------------
    def _jobs_axis(self, array: np.ndarray) -> np.ndarray:
        """Reshape a lanes-leading array to (jobs, banks, ...)."""
        return array.reshape((self.num_jobs, self.num_banks)
                             + array.shape[1:])

    @property
    def scalar_jobs(self) -> np.ndarray:
        """SRF values as a (jobs, banks) view."""
        return self._jobs_axis(self.scalar)

    @property
    def dense_jobs(self) -> np.ndarray:
        """Dense registers as a (registers, jobs, banks, lanes) view."""
        r, _, lanes = self.dense.shape
        return self.dense.reshape(r, self.num_jobs, self.num_banks, lanes)

    @property
    def exited_jobs(self) -> np.ndarray:
        """Exit flags as a (jobs, banks) view."""
        return self._jobs_axis(self.exited)

    @property
    def exhausted_mask_jobs(self) -> np.ndarray:
        """Exhaustion bitmasks as a (jobs, banks) view."""
        return self._jobs_axis(self.exhausted_mask)

    @property
    def load_targets_mask_jobs(self) -> np.ndarray:
        """Load-target bitmasks as a (jobs, banks) view."""
        return self._jobs_axis(self.load_targets_mask)

    @property
    def job_exited(self) -> np.ndarray:
        """Per-job completion: True once every bank of the job exited."""
        return self.exited_jobs.all(axis=1)

    def lane(self, job: int, bank: int) -> int:
        """Flat lane index of (*job*, *bank*)."""
        self._check_job(job)
        if not 0 <= bank < self.num_banks:
            raise ExecutionError(
                f"bank {bank} out of range (have {self.num_banks})")
        return job * self.num_banks + bank

    def _check_job(self, job: int) -> None:
        if not 0 <= job < self.num_jobs:
            raise ExecutionError(
                f"job {job} out of range (have {self.num_jobs})")

    # ------------------------------------------------------------------
    # per-job views (the per-job LaneEngine interface subset)
    # ------------------------------------------------------------------
    def job_units(self, job: int) -> List[LaneUnitView]:
        """The job's banks through the ProcessingUnit view interface."""
        self._check_job(job)
        base = job * self.num_banks
        return self.units[base:base + self.num_banks]

    def job_banks(self, job: int) -> List[LaneBankView]:
        """The job's bank memories (snapshot read interface)."""
        self._check_job(job)
        base = job * self.num_banks
        return self.banks[base:base + self.num_banks]

    # ------------------------------------------------------------------
    # host-side (SB mode) per-job data access
    # ------------------------------------------------------------------
    def host_write_dense_jobs(self, name: str,
                              per_job: Sequence[Sequence]) -> None:
        """Write one dense region from ``per_job[job][bank]`` arrays."""
        self.memory.add_dense(name, self._flatten(per_job, "array"))

    def host_write_triples_jobs(self, name: str,
                                per_job: Sequence[Sequence]) -> None:
        """Write one COO region from ``per_job[job][bank]`` triples."""
        self.memory.add_triples(name, self._flatten(per_job, "triple"))

    def host_read_dense_jobs(self, name: str) -> List[List[np.ndarray]]:
        """Read a dense region back as ``[job][bank]`` arrays."""
        flat = self.host_read_dense(name)
        return [flat[j * self.num_banks:(j + 1) * self.num_banks]
                for j in range(self.num_jobs)]

    def _flatten(self, per_job: Sequence[Sequence], what: str) -> List:
        self._require_sb("host writes")
        if len(per_job) != self.num_jobs:
            raise ExecutionError(
                f"need one {what} list per job "
                f"(got {len(per_job)}, have {self.num_jobs} jobs)")
        flat: List = []
        for job, per_bank in enumerate(per_job):
            if len(per_bank) != self.num_banks:
                raise ExecutionError(
                    f"job {job}: need one {what} per bank "
                    f"(got {len(per_bank)}, have {self.num_banks} banks)")
            flat.extend(per_bank)
        return flat

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _obs_emit(self, mark) -> None:
        """Per-bank counters from the lane tier plus batch-level ones."""
        super()._obs_emit(mark)
        obs.add_counter("batch.jobs", self.num_jobs)
        obs.add_counter("batch.jobs_exited", int(self.job_exited.sum()))
        obs.add_counter("batch.lanes", self.num_lanes)


def make_batch_engine(num_jobs: int, num_banks: int,
                      config: ProcessingUnitConfig = ProcessingUnitConfig(),
                      precision: str = "fp64",
                      check_lockstep: bool = True) -> BatchEngine:
    """Build a jobs x banks batch engine (mirrors :func:`make_engine`).

    There is only one batched implementation; the factory exists so batch
    construction reads like the engine/planner tiers and stays a single
    call site if alternatives ever appear.
    """
    return BatchEngine(num_jobs, num_banks, config=config,
                       precision=precision, check_lockstep=check_lockstep)
