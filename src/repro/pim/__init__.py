"""Processing units, bank memory and the all-bank lock-step engine."""

from .memory import (PADDING_INDEX, BankMemory, DenseRegion, TripleRegion,
                     padded_triples)
from .registers import DenseRegister, RegisterFile, SparseQueue
from .beat import Beat
from .unit import ProcessingUnit, UnitStats, uses_bank
from .engine import AllBankEngine, EngineStats, Mode
from .verify import (BeatSlot, beat_signature, check_stream_length,
                     expected_beats)
from . import alu

__all__ = [
    "PADDING_INDEX", "BankMemory", "DenseRegion", "TripleRegion",
    "padded_triples", "DenseRegister", "RegisterFile", "SparseQueue",
    "Beat", "ProcessingUnit", "UnitStats", "uses_bank", "AllBankEngine",
    "EngineStats", "Mode", "alu", "BeatSlot", "beat_signature",
    "check_stream_length", "expected_beats",
]
