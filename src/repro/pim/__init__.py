"""Processing units, bank memory and the all-bank lock-step engines.

Two functional engines implement the same lock-step broadcast semantics:
the scalar :class:`AllBankEngine` (one Python :class:`ProcessingUnit` per
bank — the reference oracle) and the vectorized :class:`LaneEngine`
(whole-channel state as numpy lanes — bitwise identical, much faster).
:func:`make_engine` picks between them (``PSYNCPIM_ENGINE``).
"""

from typing import Optional

from ..config import ProcessingUnitConfig, resolve_engine
from .memory import (PADDING_INDEX, BankMemory, DenseRegion, TripleRegion,
                     padded_triples)
from .registers import DenseRegister, RegisterFile, SparseQueue
from .beat import Beat
from .unit import ProcessingUnit, UnitStats, uses_bank
from .engine import AllBankEngine, EngineStats, Mode
from .lane_engine import LaneEngine
from .batch_engine import BatchEngine, make_batch_engine
from .lanes import DenseLanes, LaneMemory, LaneQueue, TripleLanes
from .verify import (BeatSlot, beat_signature, check_stream_length,
                     expected_beats)
from . import alu


def make_engine(num_banks: int,
                config: ProcessingUnitConfig = ProcessingUnitConfig(),
                precision: str = "fp64",
                check_lockstep: bool = True,
                engine: Optional[str] = None):
    """Build the selected functional engine (lane by default).

    *engine* overrides the ``PSYNCPIM_ENGINE`` environment variable;
    both engines expose the same driver-facing interface and produce
    bitwise-identical results.
    """
    name = resolve_engine(engine)
    cls = LaneEngine if name == "lane" else AllBankEngine
    return cls(num_banks, config=config, precision=precision,
               check_lockstep=check_lockstep)


__all__ = [
    "PADDING_INDEX", "BankMemory", "DenseRegion", "TripleRegion",
    "padded_triples", "DenseRegister", "RegisterFile", "SparseQueue",
    "Beat", "ProcessingUnit", "UnitStats", "uses_bank", "AllBankEngine",
    "EngineStats", "Mode", "LaneEngine", "BatchEngine", "DenseLanes",
    "LaneMemory", "LaneQueue", "TripleLanes", "make_engine",
    "make_batch_engine", "alu", "BeatSlot",
    "beat_signature", "check_stream_length", "expected_beats",
]
