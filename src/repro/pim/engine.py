"""All-bank lock-step execution engine.

The engine owns one :class:`~repro.pim.unit.ProcessingUnit` per bank and
broadcasts every transaction to all of them, exactly as the host's all-bank
commands do. It also models the HBM-PIM mode protocol (Fig. 1): kernels may
only run in AB-PIM mode, programming happens in AB mode, and host data
movement happens in SB mode; each transition is counted so the timing tier
can charge it.

A lock-step invariant is enforced after every transaction: all *active*
units share the same program counter. Divergence between units is expressed
only through predication, per-unit columns and early exit — never through
control flow — which is the architectural core of pSyncPIM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..config import ProcessingUnitConfig
from ..errors import ExecutionError
from .. import obs
from ..isa import Program
from .beat import Beat
from .memory import BankMemory
from .unit import ProcessingUnit


class Mode(enum.Enum):
    """HBM-PIM execution modes (paper Fig. 1)."""

    SB = "single-bank"
    AB = "all-bank"
    AB_PIM = "all-bank-pim"


#: Legal mode transitions of the Fig. 1 protocol.
_TRANSITIONS = {
    (Mode.SB, Mode.AB),
    (Mode.AB, Mode.AB_PIM),
    (Mode.AB_PIM, Mode.SB),
    (Mode.AB, Mode.SB),
    (Mode.AB_PIM, Mode.AB),
}


@dataclass
class EngineStats:
    """Aggregated execution counters across all units."""

    beats: int = 0
    mode_switches: int = 0
    programs_loaded: int = 0
    kernel_launches: int = 0
    instructions: int = 0
    alu_ops: int = 0
    #: Beats that were NOPs for at least one unit (divergence measure).
    predicated_beats: int = 0
    per_mode_beats: Dict[str, int] = field(default_factory=dict)


class AllBankEngine:
    """Lock-step broadcast execution over one channel-group of banks."""

    def __init__(self, num_banks: int,
                 config: ProcessingUnitConfig = ProcessingUnitConfig(),
                 precision: str = "fp64",
                 check_lockstep: bool = True) -> None:
        if num_banks <= 0:
            raise ExecutionError("need at least one bank")
        self.config = config
        self.precision = precision
        self.check_lockstep = check_lockstep
        self.banks: List[BankMemory] = [BankMemory()
                                        for _ in range(num_banks)]
        self.units: List[ProcessingUnit] = [
            ProcessingUnit(memory, config, precision)
            for memory in self.banks]
        self.mode = Mode.SB
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # mode protocol
    # ------------------------------------------------------------------
    def switch_mode(self, target: Mode) -> None:
        """Perform one mode transition (charged by the timing tier)."""
        if target is self.mode:
            return
        if (self.mode, target) not in _TRANSITIONS:
            raise ExecutionError(
                f"illegal mode transition {self.mode.value} -> "
                f"{target.value}")
        self.mode = target
        self.stats.mode_switches += 1

    def load_program(self, program: Program,
                     reset_registers: bool = True) -> None:
        """Broadcast-program every unit (requires AB mode)."""
        if self.mode is not Mode.AB:
            raise ExecutionError(
                "programs are written in AB mode (paper Fig. 1)")
        for unit in self.units:
            unit.load_program(program, reset_registers=reset_registers)
        self.stats.programs_loaded += 1

    def arm(self, reset_registers: bool = False) -> None:
        """Re-arm all units at PC 0 for another pass of the same program."""
        for unit in self.units:
            unit.arm(reset_registers=reset_registers)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def all_exited(self) -> bool:
        return all(unit.exited for unit in self.units)

    @property
    def active_count(self) -> int:
        return sum(not unit.exited for unit in self.units)

    def step(self, beat: Beat) -> None:
        """Broadcast one memory transaction to every unit."""
        if self.mode is not Mode.AB_PIM:
            raise ExecutionError("kernels execute only in AB-PIM mode")
        # One pass over the units folds the beat broadcast, the active
        # counts and the lock-step divergence flag together; the O(N)
        # set-comprehension over PCs only runs when a beat actually
        # diverged (i.e. when it is about to raise).
        before_active = 0
        active_after = 0
        any_exited = False
        diverged = False
        first_pc = -1
        for unit in self.units:
            if not unit.exited:
                before_active += 1
            unit.consume_beat(beat)
            if unit.exited:
                any_exited = True
            else:
                active_after += 1
                if first_pc < 0:
                    first_pc = unit.pc
                elif unit.pc != first_pc:
                    diverged = True
        self.stats.beats += 1
        key = self.mode.value
        self.stats.per_mode_beats[key] = (
            self.stats.per_mode_beats.get(key, 0) + 1)
        if active_after < before_active or (any_exited and active_after):
            self.stats.predicated_beats += 1
        if self.check_lockstep and diverged:
            self._assert_lockstep()

    def run(self, beats: Iterable[Beat]) -> int:
        """Feed a transaction stream; returns the number consumed.

        Stops early once every unit has exited — the host polls completion
        after the stream (paper §IV-D: "the host chip must identify whether
        all banks in a memory channel complete kernel execution").
        """
        consumed = 0
        self.stats.kernel_launches += 1
        mark = self._obs_mark()
        for beat in beats:
            if self.all_exited:
                break
            self.step(beat)
            consumed += 1
        for unit in self.units:
            unit.flush_control()
        if self.check_lockstep:
            self._assert_lockstep()
        self._collect_unit_stats()
        if mark is not None:
            self._obs_emit(mark)
        return consumed

    def _obs_mark(self):
        """Pre-run counter snapshot, or None while obs is disabled."""
        if not obs.enabled():
            return None
        return ([u.stats.beats for u in self.units],
                [u.stats.nop_beats for u in self.units],
                self.stats.beats, self.stats.predicated_beats)

    def _obs_emit(self, mark) -> None:
        """Feed this launch's per-bank and divergence counters to obs.

        The counter names and values match :class:`LaneEngine` exactly —
        the differential obs tests pin that equivalence.
        """
        busy0, nop0, beats0, pred0 = mark
        obs.add_bank_counter(
            "engine.bank_busy_beats",
            [u.stats.beats - b0 for u, b0 in zip(self.units, busy0)],
            sample=True)
        obs.add_bank_counter(
            "engine.bank_idle_beats",
            [u.stats.nop_beats - n0 for u, n0 in zip(self.units, nop0)])
        obs.add_counter("engine.beats", self.stats.beats - beats0)
        obs.add_counter("engine.predicated_beats",
                        self.stats.predicated_beats - pred0)
        obs.add_counter("engine.kernel_launches", 1)
        obs.add_counter("engine.exited_lanes",
                        sum(1 for u in self.units if u.exited))
        obs.add_counter("engine.exhausted_lanes",
                        sum(1 for u in self.units if u.exhausted_mask))

    def _assert_lockstep(self) -> None:
        pcs = {unit.pc for unit in self.units if not unit.exited}
        if len(pcs) > 1:
            raise ExecutionError(
                f"lock-step violated: active units at PCs {sorted(pcs)}")

    def _collect_unit_stats(self) -> None:
        self.stats.instructions = sum(u.stats.instructions
                                      for u in self.units)
        self.stats.alu_ops = sum(u.stats.alu_ops for u in self.units)

    # ------------------------------------------------------------------
    # host-side (SB mode) data access helpers
    # ------------------------------------------------------------------
    def host_write_dense(self, name: str, per_bank: Sequence) -> None:
        """Host writes a dense region into every bank (SB mode traffic)."""
        self._require_sb("host writes")
        if len(per_bank) != len(self.banks):
            raise ExecutionError("need one array per bank")
        for memory, data in zip(self.banks, per_bank):
            memory.add_dense(name, data)

    def host_write_triples(self, name: str, per_bank: Sequence) -> None:
        """Host writes a COO stream region into every bank."""
        self._require_sb("host writes")
        if len(per_bank) != len(self.banks):
            raise ExecutionError("need one (rows, cols, vals) per bank")
        for memory, (rows, cols, vals) in zip(self.banks, per_bank):
            memory.add_triples(name, rows, cols, vals)

    def host_read_dense(self, name: str) -> List:
        """Host reads a dense region back from every bank."""
        self._require_sb("host reads")
        return [memory.dense(name).data.copy() for memory in self.banks]

    def _require_sb(self, what: str) -> None:
        if self.mode is not Mode.SB:
            raise ExecutionError(f"{what} require SB mode (paper Fig. 1)")
