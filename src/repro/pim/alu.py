"""The vector ALU: binary operators and horizontal reductions.

The VALU supports an arbitrary binary operation selected by the 4-bit
Binary field (Table VI); this module maps :class:`~repro.isa.BinaryOp`
values to scalar- and vector-form callables and provides the identity
element each operation reduces from. All arithmetic is performed in float64
regardless of the Value format — the format governs lane counts, queue
capacities and bandwidth, not the reference numerics (documented in
DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import ExecutionError
from ..isa import BinaryOp

#: Scalar/broadcast implementations of each binary op. All accept numpy
#: arrays or floats and broadcast like numpy.
_OPS: Dict[BinaryOp, Callable] = {
    BinaryOp.ADD: lambda a, b: a + b,
    BinaryOp.SUB: lambda a, b: a - b,
    BinaryOp.MUL: lambda a, b: a * b,
    BinaryOp.MIN: np.minimum,
    BinaryOp.MAX: np.maximum,
    BinaryOp.LAND: lambda a, b: np.logical_and(a, b).astype(float),
    BinaryOp.LOR: lambda a, b: np.logical_or(a, b).astype(float),
    BinaryOp.FIRST: lambda a, b: a * np.ones_like(b) if hasattr(b, "shape")
    else a,
    BinaryOp.SECOND: lambda a, b: b,
}

#: Identity elements: op(identity, x) == x for the reduction-friendly ops.
_IDENTITIES: Dict[BinaryOp, float] = {
    BinaryOp.ADD: 0.0,
    BinaryOp.MUL: 1.0,
    BinaryOp.MIN: float("inf"),
    BinaryOp.MAX: float("-inf"),
    BinaryOp.LAND: 1.0,
    BinaryOp.LOR: 0.0,
}


def apply(op: BinaryOp, a, b):
    """Apply *op* elementwise (numpy broadcasting rules)."""
    try:
        fn = _OPS[op]
    except KeyError:  # pragma: no cover - enum is closed
        raise ExecutionError(f"unsupported binary op {op}") from None
    return fn(a, b)


def identity(op: BinaryOp) -> float:
    """The identity element of *op* for reductions.

    FIRST/SECOND/SUB have no identity and cannot anchor a Reduce.
    """
    try:
        return _IDENTITIES[op]
    except KeyError:
        raise ExecutionError(
            f"{op.name} has no identity element for reduction") from None


def reduce_array(op: BinaryOp, values: np.ndarray, seed: float) -> float:
    """Fold *values* into *seed* with *op* (the Reduce instruction)."""
    result = seed
    if values.size:
        if op is BinaryOp.ADD:
            result = result + float(np.sum(values))
        elif op is BinaryOp.MUL:
            result = result * float(np.prod(values))
        elif op is BinaryOp.MIN:
            result = min(result, float(np.min(values)))
        elif op is BinaryOp.MAX:
            result = max(result, float(np.max(values)))
        elif op is BinaryOp.LOR:
            result = float(bool(result) or bool(np.any(values)))
        elif op is BinaryOp.LAND:
            result = float(bool(result) and bool(np.all(values)))
        else:
            raise ExecutionError(f"{op.name} is not reducible")
    return result
