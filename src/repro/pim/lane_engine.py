"""Vectorized lane engine: all banks of a channel as numpy lanes.

:class:`LaneEngine` is a drop-in alternative to
:class:`~repro.pim.engine.AllBankEngine`. Where the scalar engine owns one
:class:`~repro.pim.unit.ProcessingUnit` per bank and interprets each beat
bank-by-bank, the lane engine holds every unit's architectural state
stacked across banks — scalars, dense registers, queues, stream cursors,
exit/exhaustion masks as arrays with one *lane* per bank — and executes
each broadcast beat as a handful of masked array operations.

Why a single shared program counter is sound: the lock-step invariant the
scalar engine asserts every beat (all *active* units share a PC) holds by
construction here. Divergence in pSyncPIM is expressed only through
predication, per-unit columns and early exit — never through control flow
— so JUMP counts are immediates shared by the whole cohort, and a lane
that exits (CEXIT/EXIT/fall-off) never rejoins until the next ``arm()``.
The engine therefore walks one PC and one set of loop counters for the
active cohort, applying each instruction under a lane mask.

Bitwise equivalence with the scalar engine is a hard guarantee, verified
by differential tests (``tests/test_pim_lane_engine.py``):

* every elementwise op runs the same float64 IEEE operations, just
  batched over lanes;
* Reduce preserves numpy's pairwise summation order by reducing each
  lane over exactly its own elements (lanes are grouped by pop count so
  the 2-D axis reduction sees the same per-row lengths the scalar
  1-D reductions saw);
* queue and cursor state advance through the same sequence of predicated
  steps, so FIFO orders and stream positions match exactly.

The scalar engine remains the reference oracle; select between them with
``PSYNCPIM_ENGINE`` (see :func:`repro.config.resolve_engine`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..config import ProcessingUnitConfig, element_size
from ..errors import ExecutionError
from .. import obs
from ..isa import (BInstruction, CInstruction, Opcode, Operand, Program,
                   BinaryOp)
from . import alu
from .beat import Beat
from .engine import _TRANSITIONS, EngineStats, Mode
from .lanes import LaneMemory, LaneQueue
from .memory import PADDING_INDEX
from .registers import INDEX_BYTES
from .unit import uses_bank


def _reduce_rows(op: BinaryOp, values: np.ndarray,
                 seed: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.pim.alu.reduce_array` over a (n, k) block.

    numpy's axis reductions use the same pairwise split per row as the
    1-D reductions the scalar engine performs, so this is bitwise equal
    to reducing each row separately.
    """
    if values.shape[1] == 0:
        return seed
    if op is BinaryOp.ADD:
        return seed + values.sum(axis=1)
    if op is BinaryOp.MUL:
        return seed * values.prod(axis=1)
    if op is BinaryOp.MIN:
        # python min(seed, m): keep the seed unless m compares smaller
        # (matters for NaN; np.minimum would propagate it instead).
        m = values.min(axis=1)
        return np.where(m < seed, m, seed)
    if op is BinaryOp.MAX:
        m = values.max(axis=1)
        return np.where(m > seed, m, seed)
    if op is BinaryOp.LOR:
        return (seed.astype(bool) | values.astype(bool).any(axis=1)
                ).astype(float)
    if op is BinaryOp.LAND:
        return (seed.astype(bool) & values.astype(bool).all(axis=1)
                ).astype(float)
    raise ExecutionError(f"{op.name} is not reducible")


class _LaneUnitStats:
    """Per-lane view with the :class:`~repro.pim.unit.UnitStats` fields."""

    __slots__ = ("_engine", "_lane")

    def __init__(self, engine: "LaneEngine", lane: int) -> None:
        self._engine = engine
        self._lane = lane

    @property
    def instructions(self) -> int:
        return int(self._engine._instr[self._lane])

    @property
    def alu_ops(self) -> int:
        return int(self._engine._alu[self._lane])

    @property
    def beats(self) -> int:
        return int(self._engine._beat_count[self._lane])

    @property
    def nop_beats(self) -> int:
        return int(self._engine._nop[self._lane])


class _LaneRegisters:
    """Per-lane register-file view (capacities + SRF access)."""

    __slots__ = ("_engine", "_lane")

    def __init__(self, engine: "LaneEngine", lane: int) -> None:
        self._engine = engine
        self._lane = lane

    @property
    def lanes(self) -> int:
        return self._engine.lanes

    @property
    def queue_capacity(self) -> int:
        return self._engine.queue_capacity

    @property
    def group_size(self) -> int:
        return self._engine.group_size

    @property
    def scalar(self) -> float:
        return float(self._engine.scalar[self._lane])

    @scalar.setter
    def scalar(self, value: float) -> None:
        self._engine.scalar[self._lane] = float(value)


class LaneUnitView:
    """One lane presented through the ProcessingUnit interface subset."""

    __slots__ = ("_engine", "_lane", "registers", "stats")

    def __init__(self, engine: "LaneEngine", lane: int) -> None:
        self._engine = engine
        self._lane = lane
        self.registers = _LaneRegisters(engine, lane)
        self.stats = _LaneUnitStats(engine, lane)

    @property
    def exited(self) -> bool:
        return bool(self._engine.exited[self._lane])

    @property
    def pc(self) -> int:
        return self._engine.pc

    @property
    def exhausted_mask(self) -> int:
        return int(self._engine.exhausted_mask[self._lane])

    @property
    def load_targets_mask(self) -> int:
        return int(self._engine.load_targets_mask[self._lane])

    @property
    def exhausted(self) -> bool:
        return self.exhausted_mask != 0


class LaneBankView:
    """One lane's memory through the BankMemory read interface.

    ``dense``/``triples`` return scalar-tier region *snapshots* (copies)
    — the drivers only read regions back after a run, so copy semantics
    match the host-readback contract.
    """

    __slots__ = ("_memory", "_lane")

    def __init__(self, memory: LaneMemory, lane: int) -> None:
        self._memory = memory
        self._lane = lane

    def dense(self, name: str):
        return self._memory.dense(name).snapshot(self._lane)

    def triples(self, name: str):
        return self._memory.triples(name).snapshot(self._lane)

    def __contains__(self, name: str) -> bool:
        return name in self._memory

    def region_names(self):
        return self._memory.region_names()


class LaneEngine:
    """Lock-step broadcast execution, vectorized one-lane-per-bank."""

    def __init__(self, num_banks: int,
                 config: ProcessingUnitConfig = ProcessingUnitConfig(),
                 precision: str = "fp64",
                 check_lockstep: bool = True) -> None:
        if num_banks <= 0:
            raise ExecutionError("need at least one bank")
        self.config = config
        self.precision = precision
        #: Kept for interface parity; the lane engine preserves lock-step
        #: by construction (single shared PC), so there is nothing to check.
        self.check_lockstep = check_lockstep
        self.num_lanes = num_banks
        value_bytes = element_size(precision)
        self.lanes = config.datapath_bytes // value_bytes
        self.queue_capacity = min(config.subqueue_bytes // value_bytes,
                                  config.subqueue_bytes // INDEX_BYTES)
        self.group_size = min(self.lanes, self.queue_capacity)

        self.memory = LaneMemory(num_banks)
        # architectural state, one row/entry per lane
        self.scalar = np.zeros(num_banks)
        self.dense = np.zeros((config.num_dense_registers, num_banks,
                               self.lanes))
        self.queues = [LaneQueue(num_banks, self.queue_capacity)
                       for _ in range(config.num_sparse_queues)]
        self.exited = np.zeros(num_banks, dtype=bool)
        self.exhausted_mask = np.zeros(num_banks, dtype=np.int64)
        self.load_targets_mask = np.zeros(num_banks, dtype=np.int64)
        self.cursors: Dict[str, np.ndarray] = {}
        # shared control state (sound under the lock-step invariant)
        self.pc = 0
        self.loop_counters: Dict[int, int] = {}
        self.program: Optional[Program] = None
        self._needs_beat: Sequence[bool] = ()
        self._is_control: Sequence[bool] = ()
        # per-lane stat counters, aggregated into EngineStats on run()
        self._instr = np.zeros(num_banks, dtype=np.int64)
        self._alu = np.zeros(num_banks, dtype=np.int64)
        self._beat_count = np.zeros(num_banks, dtype=np.int64)
        self._nop = np.zeros(num_banks, dtype=np.int64)

        self.mode = Mode.SB
        self.stats = EngineStats()
        self._dispatch = {
            Opcode.DMOV: self._dmov,
            Opcode.INDMOV: self._indmov,
            Opcode.SPMOV: self._spmov,
            Opcode.SPFW: self._spfw,
            Opcode.GTHSCT: self._gthsct,
            Opcode.SDV: self._sdv,
            Opcode.SSPV: self._sspv,
            Opcode.REDUCE: self._reduce,
            Opcode.DVDV: self._dvdv,
            Opcode.SPVDV: self._spvdv,
            Opcode.SPVSPV: self._spvspv,
        }
        self.units: List[LaneUnitView] = [LaneUnitView(self, i)
                                          for i in range(num_banks)]
        self.banks: List[LaneBankView] = [LaneBankView(self.memory, i)
                                          for i in range(num_banks)]

    # ------------------------------------------------------------------
    # mode protocol (identical to the scalar engine)
    # ------------------------------------------------------------------
    def switch_mode(self, target: Mode) -> None:
        if target is self.mode:
            return
        if (self.mode, target) not in _TRANSITIONS:
            raise ExecutionError(
                f"illegal mode transition {self.mode.value} -> "
                f"{target.value}")
        self.mode = target
        self.stats.mode_switches += 1

    def load_program(self, program: Program,
                     reset_registers: bool = True) -> None:
        if self.mode is not Mode.AB:
            raise ExecutionError(
                "programs are written in AB mode (paper Fig. 1)")
        if len(program) > self.config.instruction_slots:
            raise ExecutionError("program exceeds the control register")
        self.program = program
        self._is_control = tuple(isinstance(ins, CInstruction)
                                 for ins in program)
        self._needs_beat = tuple(
            False if ctrl else uses_bank(ins)
            for ctrl, ins in zip(self._is_control, program))
        self.arm(reset_registers=reset_registers)
        self.stats.programs_loaded += 1

    def arm(self, reset_registers: bool = False) -> None:
        self.pc = 0
        self.loop_counters.clear()
        self.exited[:] = False
        self.exhausted_mask[:] = 0
        self.load_targets_mask[:] = 0
        if reset_registers:
            self.scalar[:] = 0.0
            self.dense[:] = 0.0
            for queue in self.queues:
                queue.clear()
            self.cursors.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def all_exited(self) -> bool:
        return bool(self.exited.all())

    @property
    def active_count(self) -> int:
        return int((~self.exited).sum())

    def step(self, beat: Beat) -> None:
        """Broadcast one memory transaction to every lane."""
        if self.mode is not Mode.AB_PIM:
            raise ExecutionError("kernels execute only in AB-PIM mode")
        if self.program is None:
            raise ExecutionError("no program loaded")
        exited_before = int(self.exited.sum())
        if exited_before:
            self._nop[self.exited] += 1
        active = np.flatnonzero(~self.exited)
        if active.size:
            self._consume(beat, active)
        self.stats.beats += 1
        key = self.mode.value
        self.stats.per_mode_beats[key] = (
            self.stats.per_mode_beats.get(key, 0) + 1)
        exited_after = int(self.exited.sum())
        active_after = self.num_lanes - exited_after
        if (exited_after > exited_before
                or (exited_before and active_after)):
            self.stats.predicated_beats += 1

    def _consume(self, beat: Beat, active: np.ndarray) -> None:
        """The consume_beat walk, once for the whole active cohort."""
        program = self.program
        n = len(program)
        budget = 4 * n + 8
        while budget:
            budget -= 1
            if self.pc >= n:
                # Falling off the end terminates the cohort.
                self.exited[active] = True
                self._nop[active] += 1
                return
            ins = program[self.pc]
            self._instr[active] += 1
            if self._is_control[self.pc]:
                active = self._control(ins, active, count_nops=True)
                if active is None:
                    return
                continue
            needs_beat = self._needs_beat[self.pc]
            self._execute_b(ins, beat if needs_beat else None, active)
            self.pc += 1
            if needs_beat:
                self._beat_count[active] += 1
                return
        raise ExecutionError(
            "program made no bank access within its step budget; "
            "kernel loops must contain a bank-access instruction")

    def run(self, beats: Iterable[Beat]) -> int:
        consumed = 0
        self.stats.kernel_launches += 1
        mark = self._obs_mark()
        for beat in beats:
            if self.all_exited:
                break
            self.step(beat)
            consumed += 1
        self.flush_control()
        self._collect_unit_stats()
        if mark is not None:
            self._obs_emit(mark)
        return consumed

    def _obs_mark(self):
        """Pre-run counter snapshot, or None while obs is disabled."""
        if not obs.enabled():
            return None
        return (self._beat_count.copy(), self._nop.copy(),
                self.stats.beats, self.stats.predicated_beats)

    def _obs_emit(self, mark) -> None:
        """Feed this launch's per-bank and divergence counters to obs."""
        busy0, nop0, beats0, pred0 = mark
        obs.add_bank_counter("engine.bank_busy_beats",
                             self._beat_count - busy0, sample=True)
        obs.add_bank_counter("engine.bank_idle_beats", self._nop - nop0)
        obs.add_counter("engine.beats", self.stats.beats - beats0)
        obs.add_counter("engine.predicated_beats",
                        self.stats.predicated_beats - pred0)
        obs.add_counter("engine.kernel_launches", 1)
        obs.add_counter("engine.exited_lanes", int(self.exited.sum()))
        obs.add_counter("engine.exhausted_lanes",
                        int(np.count_nonzero(self.exhausted_mask)))

    def flush_control(self) -> None:
        """Retire trailing non-bank instructions after the stream ends."""
        if self.program is None:
            return
        active = np.flatnonzero(~self.exited)
        if active.size == 0:
            return
        program = self.program
        n = len(program)
        budget = 4 * n + 8
        while budget and active.size:
            budget -= 1
            if self.pc >= n:
                self.exited[active] = True
                return
            ins = program[self.pc]
            if self._is_control[self.pc]:
                self._instr[active] += 1
                active = self._control(ins, active, count_nops=False)
                if active is None:
                    return
                continue
            if self._needs_beat[self.pc]:
                return
            self._instr[active] += 1
            self._execute_b(ins, None, active)
            self.pc += 1

    def _collect_unit_stats(self) -> None:
        self.stats.instructions = int(self._instr.sum())
        self.stats.alu_ops = int(self._alu.sum())

    # ------------------------------------------------------------------
    # control instructions (shared PC; per-lane exit decisions)
    # ------------------------------------------------------------------
    def _control(self, ins: CInstruction, active: np.ndarray,
                 count_nops: bool) -> Optional[np.ndarray]:
        """Execute one control instruction for the cohort.

        Returns the surviving cohort, or None when every lane exited
        (or, in consume mode, when the walk must stop).
        """
        op = ins.opcode
        if op is Opcode.NOP:
            self.pc += 1
            return active
        if op is Opcode.EXIT:
            self.exited[active] = True
            if count_nops:
                self._nop[active] += 1
            return None
        if op is Opcode.CEXIT:
            leaving = self._cexit_mask(ins, active)
            if leaving.any():
                gone = active[leaving]
                self.exited[gone] = True
                if count_nops:
                    self._nop[gone] += 1
                active = active[~leaving]
            if active.size == 0:
                return None
            self.pc += 1
            return active
        if op is Opcode.JUMP:
            taken = self.loop_counters.get(ins.order, 0) + 1
            if taken < ins.imm1:
                self.loop_counters[ins.order] = taken
                self.pc = ins.imm0
            else:
                self.loop_counters[ins.order] = 0
                self.pc += 1
            return active
        raise ExecutionError(f"unhandled control {ins.opcode}")

    def _cexit_mask(self, ins: CInstruction,
                    active: np.ndarray) -> np.ndarray:
        mask = ins.queue_mask
        watched = self.load_targets_mask[active] & mask
        exhausted = self.exhausted_mask[active]
        streams_done = np.where(watched != 0,
                                (exhausted & watched) == watched,
                                exhausted != 0)
        empty = np.ones(active.size, dtype=bool)
        for i, queue in enumerate(self.queues):
            if mask & (1 << i):
                empty &= queue.count[active] == 0
        return streams_done & empty

    # ------------------------------------------------------------------
    # B-format dispatch (vectorized ProcessingUnit handlers)
    # ------------------------------------------------------------------
    def _execute_b(self, ins: BInstruction, beat: Optional[Beat],
                   active: np.ndarray) -> None:
        self._dispatch[ins.opcode](ins, beat, active)

    def _cursor(self, region_name: str) -> np.ndarray:
        arr = self.cursors.get(region_name)
        if arr is None:
            arr = np.zeros(self.num_lanes, dtype=np.int64)
            self.cursors[region_name] = arr
        return arr

    # -- data movement --------------------------------------------------
    def _dmov(self, ins, beat, active) -> None:
        if ins.dst.is_dense_register and ins.src0 is Operand.BANK:
            region = self.memory.dense(beat.region)
            window = region.read_window(beat.index * self.lanes,
                                        self.lanes, active)
            self.dense[ins.dst.dense_index][active] = window
        elif ins.dst is Operand.BANK and ins.src0.is_dense_register:
            region = self.memory.dense(beat.region)
            region.write_window(beat.index * self.lanes,
                                self.dense[ins.src0.dense_index][active],
                                active)
        elif ins.dst is Operand.SRF and ins.src0 is Operand.BANK:
            region = self.memory.dense(beat.region)
            self.scalar[active] = region.read_scalar(
                np.full(active.size, beat.index, dtype=np.int64), active)
        elif ins.dst is Operand.BANK and ins.src0 is Operand.SRF:
            region = self.memory.dense(beat.region)
            region.write_scalar(
                np.full(active.size, beat.index, dtype=np.int64),
                self.scalar[active], active)
        elif ins.dst.is_dense_register and ins.src0.is_dense_register:
            self.dense[ins.dst.dense_index][active] = (
                self.dense[ins.src0.dense_index][active])
        else:
            raise ExecutionError(
                f"DMOV {ins.dst.name} <- {ins.src0.name} is not a legal "
                "combination")

    def _indmov(self, ins, beat, active) -> None:
        if ins.dst is not Operand.SRF or ins.src0 is not Operand.BANK \
                or not ins.src1.is_sparse_queue:
            raise ExecutionError("IndMOV form is SRF <- BANK[SpVQ.col]")
        queue = self.queues[ins.src1.queue_index]
        nonempty = active[queue.count[active] > 0]
        if nonempty.size == 0:
            return  # predicated NOP: nothing to point with
        _, col, _ = queue.peek(nonempty)
        live = col != PADDING_INDEX
        sel = nonempty[live]
        if sel.size == 0:
            return
        region = self.memory.dense(beat.region)
        self.scalar[sel] = region.read_scalar(col[live], sel)

    def _spmov(self, ins, beat, active) -> None:
        group = self.group_size
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            queue = self.queues[ins.dst.queue_index]
            bit = 1 << ins.dst.queue_index
            self.load_targets_mask[active] |= bit
            eligible = active[
                queue.capacity - queue.count[active] >= group]
            if eligible.size == 0:
                return  # predicated NOP: no room, keep the stream place
            region = self.memory.triples(beat.region)
            cursor = self._cursor(beat.region)
            at = cursor[eligible]
            if np.any(at % group):
                raise ExecutionError("queue stream cursor misaligned")
            rows, cols, vals, lens = region.read_group(at, group, eligible)
            cursor[eligible] = at + group
            exhausted = ((lens < group)
                         | (at + lens >= region.lengths[eligible]))
            self.exhausted_mask[eligible[exhausted]] |= bit
            for j in range(group):
                exists = j < lens
                if not exists.any():
                    break
                rj = rows[:, j]
                pad = exists & (rj == PADDING_INDEX)
                self.exhausted_mask[eligible[pad]] |= bit
                live = exists & ~pad
                if live.any():
                    queue.push(eligible[live], rj[live],
                               cols[live, j], vals[live, j])
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            queue = self.queues[ins.src0.queue_index]
            rows, cols, vals, popped = queue.pop_up_to(active, group)
            if not popped.any():
                return
            region = self.memory.triples(beat.region)
            cursor = self._cursor(beat.region)
            region.write_at(cursor[active], rows, cols, vals, popped,
                            active)
            cursor[active] += popped
        else:
            raise ExecutionError("SpMOV moves between a SpVQ and the bank")

    def _spfw(self, ins, beat, active) -> None:
        if ins.dst is not Operand.BANK or not ins.src0.is_sparse_queue:
            raise ExecutionError("SpFW form is BANK <- SpVQ")
        queue = self.queues[ins.src0.queue_index]
        rows, cols, vals, popped = queue.pop_up_to(active, queue.capacity)
        if not popped.any():
            return
        region = self.memory.triples(beat.region)
        cursor = self._cursor(beat.region)
        region.write_at(cursor[active], rows, cols, vals, popped, active)
        cursor[active] += popped

    def _gthsct(self, ins, beat, active) -> None:
        group = self.group_size
        identity_value = ins.idnt.value_as_float
        if ins.dst.is_sparse_queue and ins.src0 is Operand.BANK:
            region = self.memory.dense(beat.region)
            base = beat.index * group
            window = region.read_window(base, group, active)
            queue = self.queues[ins.dst.queue_index]
            bit = 1 << ins.dst.queue_index
            self.load_targets_mask[active] |= bit
            for lane_pos in range(group):
                live = window[:, lane_pos] != identity_value
                if live.any():
                    queue.push(active[live],
                               np.int64(base + lane_pos),
                               np.int64(base + lane_pos),
                               window[live, lane_pos])
            done = base + group >= region.lengths[active]
            self.exhausted_mask[active[done]] |= bit
        elif ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            region = self.memory.dense(beat.region)
            queue = self.queues[ins.src0.queue_index]
            rows, _, vals, popped = queue.pop_up_to(active, group)
            for j in range(int(popped.max()) if active.size else 0):
                live = popped > j
                if not live.any():
                    break
                tgt = active[live]
                rj = rows[live, j]
                ok = (rj >= 0) & (rj < region.lengths[tgt])
                region.data[tgt[ok], rj[ok]] = vals[live, j][ok]
        else:
            raise ExecutionError("GthSct transforms between BANK and a SpVQ")

    # -- arithmetic ------------------------------------------------------
    def _sdv(self, ins, beat, active) -> None:
        if not ins.dst.is_dense_register or ins.src0 is not Operand.SRF:
            raise ExecutionError("SDV form is DRF <- SRF (.) vector")
        if ins.src1 is Operand.BANK:
            region = self.memory.dense(beat.region)
            operand = region.read_window(beat.index * self.lanes,
                                         self.lanes, active)
        elif ins.src1.is_dense_register:
            operand = self.dense[ins.src1.dense_index][active]
        else:
            raise ExecutionError("SDV vector operand must be DRF or BANK")
        result = alu.apply(ins.binary, self.scalar[active][:, None],
                           operand)
        self.dense[ins.dst.dense_index][active] = np.asarray(
            result, dtype=np.float64)
        self._alu[active] += self.lanes

    def _sspv(self, ins, beat, active) -> None:
        if not ins.dst.is_sparse_queue or ins.src0 is not Operand.SRF \
                or not ins.src1.is_sparse_queue:
            raise ExecutionError("SSpV form is SpVQ <- SRF (.) SpVQ")
        src = self.queues[ins.src1.queue_index]
        sel = active[src.count[active] > 0]
        if sel.size == 0:
            return  # predicated NOP
        row, col, value = src.pop(sel)
        result = alu.apply(ins.binary, self.scalar[sel], value)
        self.queues[ins.dst.queue_index].push(
            sel, row, col, np.asarray(result, dtype=np.float64))
        self._alu[sel] += 1

    def _reduce(self, ins, beat, active) -> None:
        if ins.dst is not Operand.SRF:
            raise ExecutionError("Reduce accumulates into SRF")
        if ins.src0.is_dense_register:
            values = self.dense[ins.src0.dense_index][active]
            self.scalar[active] = _reduce_rows(ins.binary, values,
                                               self.scalar[active])
            self._alu[active] += self.lanes
        elif ins.src0.is_sparse_queue:
            queue = self.queues[ins.src0.queue_index]
            _, _, vals, popped = queue.pop_up_to(active, self.group_size)
            # Group lanes by pop count so each lane reduces over exactly
            # its own elements (preserves numpy's pairwise-sum order).
            for k in np.unique(popped):
                if k == 0:
                    continue
                rows = popped == k
                sel = active[rows]
                self.scalar[sel] = _reduce_rows(
                    ins.binary, vals[rows][:, :k], self.scalar[sel])
                self._alu[sel] += int(k)
        else:
            raise ExecutionError("Reduce source must be a DRF or SpVQ")

    def _dvdv(self, ins, beat, active) -> None:
        if not ins.dst.is_dense_register \
                or not ins.src0.is_dense_register:
            raise ExecutionError("DVDV form is DRF <- DRF (.) vector")
        left = self.dense[ins.src0.dense_index][active]
        if ins.src1 is Operand.BANK:
            region = self.memory.dense(beat.region)
            right = region.read_window(beat.index * self.lanes,
                                       self.lanes, active)
        elif ins.src1.is_dense_register:
            right = self.dense[ins.src1.dense_index][active]
        else:
            raise ExecutionError("DVDV right operand must be DRF or BANK")
        result = alu.apply(ins.binary, left, right)
        self.dense[ins.dst.dense_index][active] = np.asarray(
            result, dtype=np.float64)
        self._alu[active] += self.lanes

    def _spvdv(self, ins, beat, active) -> None:
        if ins.dst is Operand.BANK and ins.src0.is_sparse_queue:
            # scatter-accumulate one element into the open output row
            src = self.queues[ins.src0.queue_index]
            sel = active[src.count[active] > 0]
            if sel.size == 0:
                return  # predicated NOP (still consumed the transaction)
            row, _, value = src.pop(sel)
            region = self.memory.dense(beat.region)
            ok = (row >= 0) & (row < region.lengths[sel])
            tgt, rows = sel[ok], row[ok]
            current = region.data[tgt, rows]
            region.data[tgt, rows] = np.asarray(
                alu.apply(ins.binary, current, value[ok]),
                dtype=np.float64)
            self._alu[sel] += 1
        elif ins.dst.is_sparse_queue and ins.src0.is_sparse_queue \
                and ins.src1 is Operand.BANK:
            # element (.) dense-at-its-own-index -> sparse result
            src = self.queues[ins.src0.queue_index]
            sel = active[src.count[active] > 0]
            if sel.size == 0:
                return
            row, col, value = src.pop(sel)
            region = self.memory.dense(beat.region)
            gathered = region.read_scalar(row, sel)
            self.queues[ins.dst.queue_index].push(
                sel, row, col,
                np.asarray(alu.apply(ins.binary, value, gathered),
                           dtype=np.float64))
            self._alu[sel] += 1
        else:
            raise ExecutionError(
                "SpVDV forms: BANK <- SpVQ (.) BANK (scatter) or "
                "SpVQ <- SpVQ (.) BANK (gathered)")

    def _spvspv(self, ins, beat, active) -> None:
        if not (ins.dst.is_sparse_queue and ins.src0.is_sparse_queue
                and ins.src1.is_sparse_queue):
            raise ExecutionError("SpVSpV operates on three sparse queues")
        qa = self.queues[ins.src0.queue_index]
        qb = self.queues[ins.src1.queue_index]
        out = self.queues[ins.dst.queue_index]
        union_mode = bool(ins.set_mode)
        ident = ins.idnt.value_as_float
        has_a = qa.count[active] > 0
        has_b = qb.count[active] > 0

        # one operand empty: stall until its stream is exhausted, then
        # pass the other side through (union) or discard it (intersection)
        one = has_a ^ has_b
        if one.any():
            lanes = active[one]
            a_empty = ~has_a[one]
            empty_bits = np.where(a_empty, 1 << ins.src0.queue_index,
                                  1 << ins.src1.queue_index)
            ready = (self.exhausted_mask[lanes] & empty_bits) != 0
            go, go_a_empty = lanes[ready], a_empty[ready]
            pop_b = go[go_a_empty]    # qa ran dry -> drain qb
            pop_a = go[~go_a_empty]   # qb ran dry -> drain qa
            if union_mode:
                if pop_b.size:
                    row, col, value = qb.pop(pop_b)
                    out.push(pop_b, row, col, np.asarray(
                        alu.apply(ins.binary, ident, value),
                        dtype=np.float64))
                    self._alu[pop_b] += 1
                if pop_a.size:
                    row, col, value = qa.pop(pop_a)
                    out.push(pop_a, row, col, np.asarray(
                        alu.apply(ins.binary, value, ident),
                        dtype=np.float64))
                    self._alu[pop_a] += 1
            else:
                if pop_b.size:
                    qb.pop(pop_b)
                if pop_a.size:
                    qa.pop(pop_a)

        # both operands non-empty: index-matched merge step
        both = has_a & has_b
        if both.any():
            lanes = active[both]
            ra, ca, va = qa.peek(lanes)
            rb, cb, vb = qb.peek(lanes)
            eq = ra == rb
            lt = ra < rb
            gt = ~eq & ~lt
            if eq.any():
                sel = lanes[eq]
                qa.pop(sel)
                qb.pop(sel)
                out.push(sel, ra[eq], ca[eq], np.asarray(
                    alu.apply(ins.binary, va[eq], vb[eq]),
                    dtype=np.float64))
                self._alu[sel] += 1
            if lt.any():
                sel = lanes[lt]
                qa.pop(sel)
                if union_mode:
                    out.push(sel, ra[lt], ca[lt], np.asarray(
                        alu.apply(ins.binary, va[lt], ident),
                        dtype=np.float64))
                    self._alu[sel] += 1
            if gt.any():
                sel = lanes[gt]
                qb.pop(sel)
                if union_mode:
                    out.push(sel, rb[gt], cb[gt], np.asarray(
                        alu.apply(ins.binary, ident, vb[gt]),
                        dtype=np.float64))
                    self._alu[sel] += 1

    # ------------------------------------------------------------------
    # host-side (SB mode) data access helpers
    # ------------------------------------------------------------------
    def host_write_dense(self, name: str, per_bank: Sequence) -> None:
        self._require_sb("host writes")
        if len(per_bank) != len(self.banks):
            raise ExecutionError("need one array per bank")
        self.memory.add_dense(name, per_bank)

    def host_write_triples(self, name: str, per_bank: Sequence) -> None:
        self._require_sb("host writes")
        if len(per_bank) != len(self.banks):
            raise ExecutionError("need one (rows, cols, vals) per bank")
        self.memory.add_triples(name, per_bank)

    def host_read_dense(self, name: str) -> List:
        self._require_sb("host reads")
        region = self.memory.dense(name)
        return [region.data[lane, :region.lengths[lane]].copy()
                for lane in range(self.num_lanes)]

    def _require_sb(self, what: str) -> None:
        if self.mode is not Mode.SB:
            raise ExecutionError(f"{what} require SB mode (paper Fig. 1)")
