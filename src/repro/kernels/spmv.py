"""The SpMV tile kernel: Algorithm 2 on one round of per-bank tiles.

One *round* gives every bank at most one sub-matrix tile (local COO
elements, an input-vector segment, an output segment). All banks execute the
same program in lock step; banks with fewer elements see ``-1`` padding, set
their conditional-exit flag and retire early while the host keeps streaming
for the largest bank — the cost model of the paper's partially synchronous
execution.

The same kernel implements the SpTRSV level step (Algorithm 3): the
``accumulate`` operation becomes ``sub`` and the input segment holds the
level's solved values, so ``y[r] -= x[c] * v`` — lines 6-8 of Algorithm 3.
Semiring variants (min/plus for SSSP, or/and for BFS) reuse it with other
operator pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError
from ..pim import AllBankEngine, Beat, padded_triples
from . import programs
from .base import LaunchStats, launch, passes


@dataclass
class Tile:
    """One bank's workload for a round: local-index COO plus vector tiles.

    ``rows``/``cols`` are tile-local indices (row into ``y_len`` slots,
    col into ``x_segment``).
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    x_segment: np.ndarray
    y_len: int

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float64)
        self.x_segment = np.ascontiguousarray(self.x_segment,
                                              dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ExecutionError("tile arrays must align")
        if self.rows.size:
            if self.rows.max() >= self.y_len or self.rows.min() < 0:
                raise ExecutionError("tile row index outside output tile")
            if self.cols.max() >= self.x_segment.size or self.cols.min() < 0:
                raise ExecutionError("tile col index outside input segment")

    @property
    def nnz(self) -> int:
        return int(self.rows.size)


@dataclass
class TileRoundResult:
    """Outputs of one lock-step round."""

    y_per_bank: List[np.ndarray]
    stats: LaunchStats
    #: Batches the slowest bank needed (the lock-step critical path).
    batches: int
    #: Per-bank valid element counts (utilisation / imbalance analysis).
    nnz_per_bank: List[int]


def empty_tile(x_len: int = 1, y_len: int = 1) -> Tile:
    """A tile for banks with no work this round (pure padding)."""
    zero = np.zeros(0)
    return Tile(zero, zero, zero, np.zeros(max(x_len, 1)), max(y_len, 1))


def run_tile_round(engine: AllBankEngine, tiles: Sequence[Optional[Tile]],
                   accumulate: str = "add", multiply: str = "mul",
                   y_init: float = 0.0) -> TileRoundResult:
    """Execute one round of tiles on *engine* (one tile per bank).

    ``accumulate`` is the scatter operation into the output tile (``add``
    for SpMV, ``sub`` for SpTRSV levels, ``min``/``lor`` for semirings);
    ``multiply`` is the element operation against the gathered input value.
    ``y_init`` seeds the output tiles (the accumulate operation's identity
    for semiring use: +inf for min, -inf for max).
    """
    if len(tiles) != len(engine.banks):
        raise ExecutionError(
            f"need one tile per bank: {len(tiles)} != {len(engine.banks)}")
    tiles = [tile if tile is not None else empty_tile() for tile in tiles]

    rf = engine.units[0].registers
    group = rf.group_size
    batch = rf.queue_capacity
    loads = max(1, batch // group)
    batch = loads * group  # elements per outer iteration

    nnz = [tile.nnz for tile in tiles]
    max_nnz = max(nnz)
    batches = max(1, math.ceil(max_nnz / batch))
    total_elems = batches * batch

    x_len = max(tile.x_segment.size for tile in tiles)
    y_len = max(tile.y_len for tile in tiles)
    engine.host_write_triples(
        "mat", [padded_triples(t.rows, t.cols, t.vals, total_elems)
                for t in tiles])
    engine.host_write_dense(
        "x", [_pad(t.x_segment, x_len) for t in tiles])
    engine.host_write_dense("y", [np.full(y_len, float(y_init))
                                  for _ in tiles])

    stats = LaunchStats()
    load_cursor = 0
    first = True
    for step in passes(batches):
        program = _tile_program(step, loads, batch, accumulate, multiply,
                                engine.precision)
        stats.merge(launch(engine, program,
                           _tile_beats(step, loads, batch, load_cursor),
                           reset_registers=first))
        load_cursor += step * loads
        first = False

    return TileRoundResult(y_per_bank=engine.host_read_dense("y"),
                           stats=stats, batches=batches, nnz_per_bank=nnz)


def _tile_program(outer: int, loads: int, batch: int, accumulate: str,
                  multiply: str, precision: str):
    if multiply == "mul":
        return programs.spmv_program(outer, loads, batch,
                                     accumulate=accumulate,
                                     precision=precision)
    # Semiring variant: swap the SSpV operation.
    from ..isa import assemble
    return assemble(f"""
outer:
load:
    SPMOV  SPVQ0, BANK         value={precision}
    JUMP   load order=0 count={loads}
gather:
    INDMOV SRF, BANK, SPVQ0    value={precision}
    SSPV   SPVQ1, SRF, SPVQ0   value={precision} binary={multiply}
    JUMP   gather order=1 count={batch}
scatter:
    SPVDV  BANK, SPVQ1         value={precision} binary={accumulate}
    JUMP   scatter order=2 count={batch}
    CEXIT  SPVQ0|SPVQ1
    JUMP   outer order=3 count={outer}
    EXIT
""", name=f"spmv_{multiply}_{accumulate}")


def _tile_beats(outer: int, loads: int, batch: int, load_cursor: int):
    for it in range(outer):
        for load in range(loads):
            yield Beat("mat", load_cursor + it * loads + load)
        for _ in range(batch):
            yield Beat("x", 0)
        for _ in range(batch):
            yield Beat("y", 0, write=True)


def _pad(vector: np.ndarray, length: int) -> np.ndarray:
    out = np.zeros(length)
    out[:vector.size] = vector
    return out
