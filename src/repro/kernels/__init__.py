"""PIM kernel library: programs, beat streams and drivers (Table III)."""

from . import programs
from .base import (MAX_LOOP_COUNT, LaunchStats, broadcast_scalar,
                   groups_for, join_even, launch, passes, read_scalars,
                   relaunch, split_even, stream_beats)
from .blas1 import (KernelRun, daxpy, dcopy, ddot, dnrm2, dscal, dswap,
                    elementwise, gather, scatter, spaxpy, spdot)
from .gemv import dgemv, dtrsv
from .spmm import TileBlockResult, expand_block_tiles, run_tile_block
from .spmv import Tile, TileRoundResult, empty_tile, run_tile_round
from .spvspv import spvspv

__all__ = [
    "programs", "MAX_LOOP_COUNT", "LaunchStats", "broadcast_scalar",
    "groups_for", "join_even", "launch", "passes", "read_scalars",
    "relaunch", "split_even", "stream_beats",
    "KernelRun", "daxpy", "dcopy", "ddot", "dnrm2", "dscal", "dswap",
    "elementwise", "gather", "scatter", "spaxpy", "spdot",
    "dgemv", "dtrsv", "Tile", "TileRoundResult", "empty_tile",
    "run_tile_round", "TileBlockResult", "expand_block_tiles",
    "run_tile_block", "spvspv",
]
