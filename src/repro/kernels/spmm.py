"""The SpMM tile kernel: one round of per-bank tiles times k columns.

SpMM (``Y = A @ X`` with a dense block ``X`` of k right-hand-side
columns) reuses the SpMV tile program unchanged: the sparse tile is the
same COO stream, and each right-hand-side column is an independent
gather/accumulate lane over that stream. A bank's block therefore
expands into k lock-step lanes — lane ``(bank, j)`` runs the tile
against column ``j`` of the bank's input segment — and the whole block
executes as one :func:`~repro.kernels.spmv.run_tile_round` launch over
``banks x k`` engine lanes.

At ``k == 1`` the expansion is the identity, so the SpMM kernel is
bitwise the SpMV kernel: same program, same beats, same float
operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError
from ..pim import AllBankEngine
from .spmv import LaunchStats, Tile, run_tile_round


@dataclass
class TileBlockResult:
    """Outputs of one lock-step SpMM round (banks x k lanes)."""

    #: Per-bank output blocks, each of shape ``(y_len, k)``.
    y_per_bank: List[np.ndarray]
    stats: LaunchStats
    #: Batches the slowest lane needed (the lock-step critical path).
    batches: int
    #: Per-bank valid element counts (identical across a bank's lanes).
    nnz_per_bank: List[int]


def expand_block_tiles(tiles: Sequence[Optional[Tile]], num_rhs: int,
                       ) -> List[Optional[Tile]]:
    """Flatten per-bank block tiles into ``banks x num_rhs`` lane tiles.

    Each input tile carries a 2-D ``x_segment`` of shape
    ``(segment, num_rhs)``; lane ``bank * num_rhs + j`` gets the same
    COO stream against column ``j``. ``None`` (idle-bank) entries expand
    to ``num_rhs`` ``None`` lanes.
    """
    if num_rhs < 1:
        raise ExecutionError(f"SpMM needs num_rhs >= 1, got {num_rhs}")
    lanes: List[Optional[Tile]] = []
    for tile in tiles:
        if tile is None:
            lanes.extend([None] * num_rhs)
            continue
        segment = np.asarray(tile.x_segment)
        if segment.ndim == 1:
            segment = segment[:, None]
        if segment.ndim != 2 or segment.shape[1] != num_rhs:
            raise ExecutionError(
                f"block tile x_segment must have {num_rhs} columns, "
                f"got shape {segment.shape}")
        for j in range(num_rhs):
            lanes.append(Tile(tile.rows, tile.cols, tile.vals,
                              np.ascontiguousarray(segment[:, j]),
                              tile.y_len))
    return lanes


def run_tile_block(engine: AllBankEngine,
                   tiles: Sequence[Optional[Tile]], num_rhs: int = 1,
                   accumulate: str = "add", multiply: str = "mul",
                   y_init: float = 0.0) -> TileBlockResult:
    """Execute one SpMM round of block tiles on *engine*.

    *tiles* holds one block tile per bank whose ``x_segment`` is the
    bank's ``(segment, num_rhs)`` input block; *engine* must provide
    ``len(tiles) * num_rhs`` lanes. The launch is a plain
    :func:`~repro.kernels.spmv.run_tile_round` over the expanded lanes,
    so scalar/lane/batch engine equivalence carries over unchanged.
    """
    lanes = expand_block_tiles(tiles, num_rhs)
    if len(lanes) != len(engine.banks):
        raise ExecutionError(
            f"need one lane per bank: {len(lanes)} != "
            f"{len(engine.banks)}")
    round_result = run_tile_round(engine, lanes, accumulate=accumulate,
                                  multiply=multiply, y_init=y_init)
    blocks: List[np.ndarray] = []
    nnz: List[int] = []
    for b, tile in enumerate(tiles):
        cols = round_result.y_per_bank[b * num_rhs:(b + 1) * num_rhs]
        blocks.append(np.stack(cols, axis=1))
        nnz.append(0 if tile is None else tile.nnz)
    return TileBlockResult(y_per_bank=blocks, stats=round_result.stats,
                           batches=round_result.batches,
                           nnz_per_bank=nnz)
