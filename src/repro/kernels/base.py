"""Shared kernel-launch machinery.

Every kernel in :mod:`repro.kernels` follows the HBM-PIM protocol of Fig. 1:

1. SB mode: host places operands into bank regions.
2. SB -> AB: host programs the kernel (and broadcasts any scalar).
3. AB -> AB-PIM: every subsequent memory transaction steps all units.
4. AB-PIM -> SB: host reads results back.

:func:`launch` wraps steps 2-4 around a program and its beat stream;
:func:`passes` splits long loops into several launches because the JUMP
iteration counter is a 10-bit immediate (at most 1023 iterations per pass).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from ..errors import ExecutionError
from ..isa import Program
from ..pim import AllBankEngine, Beat, Mode

#: JUMP's 10-bit iteration immediate bounds a single pass.
MAX_LOOP_COUNT = 1023


@dataclass
class LaunchStats:
    """What one kernel launch cost, for the timing/energy tiers."""

    beats: int = 0
    launches: int = 0
    mode_switches: int = 0
    programs_loaded: int = 0

    def merge(self, other: "LaunchStats") -> "LaunchStats":
        self.beats += other.beats
        self.launches += other.launches
        self.mode_switches += other.mode_switches
        self.programs_loaded += other.programs_loaded
        return self


def launch(engine: AllBankEngine, program: Program,
           beats: Iterable[Beat], scalar: float = None,
           reset_registers: bool = True) -> LaunchStats:
    """Run one program over one beat stream with the full mode protocol."""
    switches_before = engine.stats.mode_switches
    engine.switch_mode(Mode.AB)
    engine.load_program(program, reset_registers=reset_registers)
    if scalar is not None:
        broadcast_scalar(engine, scalar)
    engine.switch_mode(Mode.AB_PIM)
    consumed = engine.run(beats)
    engine.switch_mode(Mode.SB)
    if not engine.all_exited:
        raise ExecutionError(
            f"kernel {program.name!r} did not terminate: "
            f"{engine.active_count} units still active after "
            f"{consumed} transactions")
    return LaunchStats(beats=consumed, launches=1,
                       mode_switches=engine.stats.mode_switches
                       - switches_before,
                       programs_loaded=1)


def relaunch(engine: AllBankEngine, beats: Iterable[Beat]) -> LaunchStats:
    """Re-run the already-loaded program on a fresh beat stream.

    Queue and register contents survive (streaming kernels resume where
    they stopped); only control flow is re-armed.
    """
    engine.switch_mode(Mode.AB)
    engine.arm(reset_registers=False)
    engine.switch_mode(Mode.AB_PIM)
    consumed = engine.run(beats)
    engine.switch_mode(Mode.SB)
    if not engine.all_exited:
        raise ExecutionError("kernel pass did not terminate")
    return LaunchStats(beats=consumed, launches=1, mode_switches=3)


def broadcast_scalar(engine: AllBankEngine, value: float) -> None:
    """Write *value* into every unit's SRF (AB-mode host broadcast)."""
    if engine.mode is not Mode.AB:
        raise ExecutionError("scalar broadcast requires AB mode")
    for unit in engine.units:
        unit.registers.scalar = float(value)


def read_scalars(engine: AllBankEngine) -> np.ndarray:
    """Host readback of every unit's SRF (SB mode)."""
    if engine.mode is not Mode.SB:
        raise ExecutionError("scalar readback requires SB mode")
    return np.array([unit.registers.scalar for unit in engine.units])


def passes(total_iterations: int) -> Iterator[int]:
    """Split a loop of *total_iterations* into <=1023-iteration passes."""
    if total_iterations < 0:
        raise ExecutionError("negative iteration count")
    remaining = total_iterations
    while remaining > 0:
        step = min(remaining, MAX_LOOP_COUNT)
        yield step
        remaining -= step


# ----------------------------------------------------------------------
# data distribution helpers
# ----------------------------------------------------------------------
def split_even(vector: np.ndarray, num_banks: int,
               multiple: int) -> List[np.ndarray]:
    """Split a dense vector into equal per-bank chunks.

    Every chunk has the same length — a multiple of *multiple* (the SIMD
    lane count) — zero-padded at the tail, because all-bank execution
    streams the same number of beats into every bank.
    """
    if num_banks <= 0 or multiple <= 0:
        raise ExecutionError("bad split parameters")
    chunk = math.ceil(vector.size / num_banks)
    chunk = max(multiple, math.ceil(chunk / multiple) * multiple)
    out = []
    for b in range(num_banks):
        piece = np.zeros(chunk)
        lo = b * chunk
        hi = min(lo + chunk, vector.size)
        if lo < hi:
            piece[:hi - lo] = vector[lo:hi]
        out.append(piece)
    return out


def join_even(chunks: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Inverse of :func:`split_even`: concatenate and trim padding."""
    return np.concatenate(chunks)[:length]


def groups_for(elements: int, group_size: int) -> int:
    """Beat groups needed to stream *elements* items."""
    return math.ceil(elements / group_size) if elements else 0


def stream_beats(region: str, groups: int, start: int = 0,
                 write: bool = False) -> Iterator[Beat]:
    """Sequential beat groups over one region."""
    for g in range(start, start + groups):
        yield Beat(region, g, write=write)
