"""Dense Level-2 kernels: DGEMV and DTRSV (Table III).

DGEMV distributes matrix rows across banks and runs one dot-product launch
per local row (the SRF accumulates the row's partial sums, then a scalar
write stores y[i]).

DTRSV is the dense counterpart of the SpTRSV scheme: the host walks the
columns, divides by the diagonal (division is host-side — the paper
deliberately keeps dividers out of the PIM units, §VI-D), broadcasts the
solved value, and the banks apply the rank-1 update to their chunk of the
right-hand side.
"""

from __future__ import annotations

import math
import numpy as np

from ..errors import ExecutionError
from ..pim import Beat
from . import programs
from .base import LaunchStats, groups_for, join_even, launch, split_even
from .blas1 import KernelRun, _lanes, _make_engine


def dgemv(matrix: np.ndarray, x: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DGEMV: returns y = A @ x for a dense matrix A."""
    matrix = np.asarray(matrix, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != x.size:
        raise ExecutionError("DGEMV operand shapes do not match")
    m, n = matrix.shape
    engine = _make_engine(num_banks, precision)
    lanes = _lanes(engine)

    rows_per_bank = math.ceil(m / num_banks)
    n_padded = math.ceil(n / lanes) * lanes
    groups = n_padded // lanes
    flat = []
    for b in range(num_banks):
        block = np.zeros((rows_per_bank, n_padded))
        lo, hi = b * rows_per_bank, min((b + 1) * rows_per_bank, m)
        if lo < hi:
            block[:hi - lo, :n] = matrix[lo:hi]
        flat.append(block.reshape(-1))
    engine.host_write_dense("A", flat)
    xpad = np.zeros(n_padded)
    xpad[:n] = x
    engine.host_write_dense("x", [xpad.copy() for _ in range(num_banks)])
    engine.host_write_dense("y",
                            [np.zeros(rows_per_bank)
                             for _ in range(num_banks)])

    stats = LaunchStats()
    for local_row in range(rows_per_bank):
        program = programs.dgemv_row_program(groups, precision)

        def beats(row=local_row):
            for g in range(groups):
                yield Beat("A", row * groups + g)
                yield Beat("x", g)
            yield Beat("y", row, write=True)

        stats.merge(launch(engine, program, beats(), scalar=0.0))

    y = join_even(engine.host_read_dense("y"), m)
    return KernelRun(y, stats, engine)


def dtrsv(matrix: np.ndarray, b: np.ndarray, lower: bool = True,
          num_banks: int = 16, precision: str = "fp64") -> KernelRun:
    """DTRSV: returns x solving ``T x = b`` for dense triangular T.

    The host performs the per-column division by the diagonal; banks apply
    ``b_chunk -= x_j * T[:, j]_chunk`` updates through the PIM datapath.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if matrix.shape != (n, n):
        raise ExecutionError("DTRSV operand shapes do not match")
    if np.any(np.diag(matrix) == 0.0):
        raise ExecutionError("singular triangular matrix")
    engine = _make_engine(num_banks, precision)
    lanes = _lanes(engine)

    chunks = split_even(b, num_banks, lanes)
    chunk = len(chunks[0])
    chunk_groups = groups_for(chunk, lanes)
    engine.host_write_dense("b", chunks)
    # Columns stored per bank, column-major over the bank's row chunk.
    cols = []
    for bank in range(num_banks):
        lo, hi = bank * chunk, min((bank + 1) * chunk, n)
        block = np.zeros((n, chunk))
        if lo < hi:
            block[:, :hi - lo] = matrix[lo:hi, :].T
        cols.append(block.reshape(-1))
    engine.host_write_dense("T", cols)

    order = range(n) if lower else range(n - 1, -1, -1)
    stats = LaunchStats()
    x = np.zeros(n)
    for j in order:
        owner, offset = divmod(j, chunk)
        bj = engine.banks[owner].dense("b").data[offset]
        xj = bj / matrix[j, j]
        x[j] = xj
        program = programs.dtrsv_update_program(chunk_groups, precision)

        def beats(col=j):
            for g in range(chunk_groups):
                yield Beat("T", col * chunk_groups + g)
                yield Beat("b", g)
                yield Beat("b", g, write=True)

        stats.merge(launch(engine, program, beats(), scalar=xj))
        # Re-pin the solved entry: the rank-1 update also touched b[j]
        # (T[j, j] * x_j), which a real schedule masks out; the functional
        # model restores it explicitly.
        engine.banks[owner].dense("b").data[offset] = xj

    return KernelRun(x, stats, engine)
