"""PIM assembly programs for every Table III kernel.

Each builder returns a validated :class:`~repro.isa.Program` written in the
pSyncPIM assembly of :mod:`repro.isa.assembler`, parameterised by the loop
trip counts of the launch (beat groups, queue batch size). The matching beat
streams live beside the drivers in this package — a program and its stream
are a contract: the stream provides transactions in exactly the order the
program's bank-access instructions consume them.
"""

from __future__ import annotations

from ..isa import Program, assemble


def dcopy_program(groups: int, precision: str = "fp64") -> Program:
    """DCOPY: y <- x, one 32 B group per iteration."""
    return assemble(f"""
    ; stream x through DRF0 into y
loop:
    DMOV DRF0, BANK            value={precision}
    DMOV BANK, DRF0            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name="dcopy")


def dswap_program(groups: int, precision: str = "fp64") -> Program:
    """DSWAP: x <-> y via two dense registers."""
    return assemble(f"""
loop:
    DMOV DRF0, BANK            value={precision}
    DMOV DRF1, BANK            value={precision}
    DMOV BANK, DRF1            value={precision}
    DMOV BANK, DRF0            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name="dswap")


def dscal_program(groups: int, precision: str = "fp64") -> Program:
    """DSCAL: x <- alpha * x (alpha pre-broadcast into SRF)."""
    return assemble(f"""
loop:
    SDV  DRF0, SRF, BANK       value={precision} binary=mul
    DMOV BANK, DRF0            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name="dscal")


def daxpy_program(groups: int, precision: str = "fp64") -> Program:
    """DAXPY: y <- alpha*x + y."""
    return assemble(f"""
loop:
    SDV  DRF0, SRF, BANK       value={precision} binary=mul
    DVDV DRF1, DRF0, BANK      value={precision} binary=add
    DMOV BANK, DRF1            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name="daxpy")


def ddot_program(groups: int, precision: str = "fp64") -> Program:
    """DDOT partial: SRF accumulates sum(x_i * y_i) over this bank's chunk.

    The SRF must be pre-broadcast to 0; the host reduces per-bank partials.
    """
    return assemble(f"""
loop:
    DMOV   DRF0, BANK          value={precision}
    DVDV   DRF1, DRF0, BANK    value={precision} binary=mul
    REDUCE SRF, DRF1           value={precision} binary=add
    JUMP   loop order=0 count={groups}
    EXIT
""", name="ddot")


def elementwise_program(groups: int, binary: str,
                        precision: str = "fp64") -> Program:
    """z <- x (.) y for an arbitrary binary op (vector building block)."""
    return assemble(f"""
loop:
    DMOV DRF0, BANK            value={precision}
    DVDV DRF1, DRF0, BANK      value={precision} binary={binary}
    DMOV BANK, DRF1            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name=f"elementwise_{binary}")


def gather_program(groups: int, precision: str = "fp64",
                   identity: str = "zero") -> Program:
    """GATHER: sparse x_sp <- non-identity elements of dense y_d."""
    return assemble(f"""
loop:
    GTHSCT SPVQ0, BANK         value={precision} idnt={identity}
    SPMOV  BANK, SPVQ0         value={precision}
    JUMP   loop order=0 count={groups}
    EXIT
""", name="gather")


def scatter_program(groups: int, precision: str = "fp64") -> Program:
    """SCATTER: dense y_d[idx] <- x_sp values."""
    return assemble(f"""
loop:
    SPMOV  SPVQ0, BANK         value={precision}
    GTHSCT BANK, SPVQ0         value={precision}
    JUMP   loop order=0 count={groups}
    CEXIT  SPVQ0
""", name="scatter")


def spaxpy_program(groups: int, batch: int,
                   precision: str = "fp64") -> Program:
    """SpAXPY: y_d <- alpha * x_sp + y_d (alpha in SRF)."""
    return assemble(f"""
outer:
    SPMOV SPVQ0, BANK          value={precision}
inner:
    SSPV  SPVQ1, SRF, SPVQ0    value={precision} binary=mul
    SPVDV BANK, SPVQ1          value={precision} binary=add
    JUMP  inner order=0 count={batch}
    JUMP  outer order=1 count={groups}
    CEXIT SPVQ0|SPVQ1
""", name="spaxpy")


def spdot_program(groups: int, batch: int,
                  precision: str = "fp64") -> Program:
    """SpDOT partial: SRF accumulates x_sp . y_d over this bank's chunk."""
    return assemble(f"""
outer:
    SPMOV  SPVQ0, BANK         value={precision}
inner:
    SPVDV  SPVQ1, SPVQ0, BANK  value={precision} binary=mul
    REDUCE SRF, SPVQ1          value={precision} binary=add
    JUMP   inner order=0 count={batch}
    JUMP   outer order=1 count={groups}
    CEXIT  SPVQ0|SPVQ1
""", name="spdot")


def spmv_program(outer: int, loads: int, batch: int,
                 accumulate: str = "add",
                 precision: str = "fp64") -> Program:
    """SpMV tile kernel: Algorithm 2 in batch-phased form.

    Per outer iteration the unit (1) streams *loads* beat groups of COO
    elements into SpVQ0, (2) gathers x[col] and multiplies element-wise
    into SpVQ1, (3) scatter-accumulates SpVQ1 into the output tile with the
    *accumulate* operation (``add`` for SpMV, ``sub`` for the SpTRSV level
    kernel, ``min``/``lor`` for semiring variants).

    Phase batching keeps one memory row open per phase instead of
    thrashing rows per element — the schedule the paper's row-size
    constraint (§V) is designed around.
    """
    return assemble(f"""
outer:
load:
    SPMOV  SPVQ0, BANK         value={precision}
    JUMP   load order=0 count={loads}
gather:
    INDMOV SRF, BANK, SPVQ0    value={precision}
    SSPV   SPVQ1, SRF, SPVQ0   value={precision} binary=mul
    JUMP   gather order=1 count={batch}
scatter:
    SPVDV  BANK, SPVQ1         value={precision} binary={accumulate}
    JUMP   scatter order=2 count={batch}
    CEXIT  SPVQ0|SPVQ1
    JUMP   outer order=3 count={outer}
    EXIT
""", name="spmv")


def dgemv_row_program(groups: int, precision: str = "fp64") -> Program:
    """One DGEMV output row: SRF accumulates A[i,:] . x, then writes y[i]."""
    return assemble(f"""
loop:
    DMOV   DRF0, BANK          value={precision}
    DVDV   DRF1, DRF0, BANK    value={precision} binary=mul
    REDUCE SRF, DRF1           value={precision} binary=add
    JUMP   loop order=0 count={groups}
    DMOV   BANK, SRF           value={precision}
    EXIT
""", name="dgemv_row")


def dtrsv_update_program(groups: int, precision: str = "fp64") -> Program:
    """One DTRSV column update: b_chunk <- b_chunk - scale * A[:, j]_chunk.

    The column scale is pre-broadcast into SRF by the host.
    """
    return assemble(f"""
loop:
    SDV  DRF0, SRF, BANK       value={precision} binary=mul
    DMOV DRF1, BANK            value={precision}
    DVDV DRF2, DRF1, DRF0      value={precision} binary=sub
    DMOV BANK, DRF2            value={precision}
    JUMP loop order=0 count={groups}
    EXIT
""", name="dtrsv_update")
