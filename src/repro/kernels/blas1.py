"""Level-1 BLAS and Sparse BLAS kernel drivers (Table III).

Each driver distributes its operands across banks, runs the matching PIM
program through the full mode protocol, and returns a :class:`KernelRun`
with the numerical result plus the launch statistics the timing tier uses.

Dense vectors are split into equal per-bank chunks (all-bank execution
streams every bank identically). Sparse vectors are distributed by index
range so each element lands in the bank owning its dense counterpart —
keeping every access local to a bank, the constraint commercial all-bank
PIM imposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import ProcessingUnitConfig
from ..errors import ExecutionError
from ..formats import SparseVector
from ..pim import AllBankEngine, Beat, make_engine, padded_triples
from . import programs
from .base import (LaunchStats, groups_for, join_even, launch, passes,
                   read_scalars, split_even)


@dataclass
class KernelRun:
    """Result of one kernel execution on the functional engine."""

    result: object
    stats: LaunchStats
    engine: AllBankEngine


def _make_engine(num_banks: int, precision: str,
                 engine: Optional[str] = None):
    """Build the selected functional engine (PSYNCPIM_ENGINE default)."""
    return make_engine(num_banks=num_banks,
                       config=ProcessingUnitConfig(),
                       precision=precision,
                       engine=engine)


def _lanes(engine: AllBankEngine) -> int:
    return engine.units[0].registers.lanes


def _group(engine: AllBankEngine) -> int:
    return engine.units[0].registers.group_size


# ----------------------------------------------------------------------
# dense kernels
# ----------------------------------------------------------------------
def _dense_setup(engine: AllBankEngine, **vectors) -> int:
    """Distribute dense vectors into same-named regions; return chunk len."""
    lanes = _lanes(engine)
    chunk = None
    for name, vector in vectors.items():
        chunks = split_even(np.asarray(vector, dtype=np.float64),
                            len(engine.banks), lanes)
        engine.host_write_dense(name, chunks)
        chunk = len(chunks[0])
    return chunk


def _dense_run(engine: AllBankEngine, chunk: int, program_builder,
               beat_builder, scalar: Optional[float] = None) -> LaunchStats:
    """Run a dense streaming kernel in <=1023-group passes."""
    lanes = _lanes(engine)
    total_groups = groups_for(chunk, lanes)
    stats = LaunchStats()
    offset = 0
    first = True
    for step in passes(total_groups):
        program = program_builder(step)
        stats.merge(launch(engine, program,
                           beat_builder(offset, step),
                           scalar=scalar if first else None,
                           reset_registers=first))
        offset += step
        first = False
    return stats


def dcopy(x: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DCOPY: returns y = x streamed through the PIM datapath."""
    x = np.asarray(x, dtype=np.float64)
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x, y=np.zeros_like(x))

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("y", g, write=True)

    stats = _dense_run(engine, chunk,
                       lambda n: programs.dcopy_program(n, precision), beats)
    y = join_even(engine.host_read_dense("y"), x.size)
    return KernelRun(y, stats, engine)


def dswap(x: np.ndarray, y: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DSWAP: returns (new_x, new_y) = (y, x)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ExecutionError("DSWAP operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x, y=y)

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("y", g)
            yield Beat("x", g, write=True)
            yield Beat("y", g, write=True)

    stats = _dense_run(engine, chunk,
                       lambda n: programs.dswap_program(n, precision), beats)
    new_x = join_even(engine.host_read_dense("x"), x.size)
    new_y = join_even(engine.host_read_dense("y"), y.size)
    return KernelRun((new_x, new_y), stats, engine)


def dscal(alpha: float, x: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DSCAL: returns alpha * x (computed in place on the banks)."""
    x = np.asarray(x, dtype=np.float64)
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x)

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("x", g, write=True)

    stats = _dense_run(engine, chunk,
                       lambda n: programs.dscal_program(n, precision), beats,
                       scalar=alpha)
    return KernelRun(join_even(engine.host_read_dense("x"), x.size),
                     stats, engine)


def daxpy(alpha: float, x: np.ndarray, y: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DAXPY: returns alpha*x + y."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ExecutionError("DAXPY operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x, y=y)

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("y", g)
            yield Beat("y", g, write=True)

    stats = _dense_run(engine, chunk,
                       lambda n: programs.daxpy_program(n, precision), beats,
                       scalar=alpha)
    return KernelRun(join_even(engine.host_read_dense("y"), y.size),
                     stats, engine)


def ddot(x: np.ndarray, y: np.ndarray, num_banks: int = 16,
         precision: str = "fp64") -> KernelRun:
    """DDOT: returns x . y (per-bank partials reduced by the host)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ExecutionError("DDOT operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x, y=y)

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("y", g)

    stats = _dense_run(engine, chunk,
                       lambda n: programs.ddot_program(n, precision), beats,
                       scalar=0.0)
    total = float(np.sum(read_scalars(engine)))
    return KernelRun(total, stats, engine)


def dnrm2(x: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """DNRM2: returns ||x||_2 via a PIM DDOT and a host sqrt."""
    run = ddot(x, x, num_banks=num_banks, precision=precision)
    return KernelRun(math.sqrt(max(run.result, 0.0)), run.stats, run.engine)


def elementwise(x: np.ndarray, y: np.ndarray, binary: str,
                num_banks: int = 16, precision: str = "fp64") -> KernelRun:
    """z = x (.) y for any VALU binary op (graph vector building block)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ExecutionError("elementwise operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, x=x, y=y, z=np.zeros_like(x))

    def beats(offset, step):
        for g in range(offset, offset + step):
            yield Beat("x", g)
            yield Beat("y", g)
            yield Beat("z", g, write=True)

    stats = _dense_run(
        engine, chunk,
        lambda n: programs.elementwise_program(n, binary, precision), beats)
    return KernelRun(join_even(engine.host_read_dense("z"), x.size),
                     stats, engine)


# ----------------------------------------------------------------------
# sparse vector kernels
# ----------------------------------------------------------------------
def _sparse_setup(engine: AllBankEngine, name: str, vector: SparseVector,
                  chunk: int) -> int:
    """Distribute a sparse vector by index range, chunk-local indices.

    Returns the padded per-bank element count (identical across banks, the
    all-bank padding rule).
    """
    group = _group(engine)
    srt = vector.sorted()
    owners = srt.indices // chunk
    per_bank = []
    max_count = 0
    for b in range(len(engine.banks)):
        mask = owners == b
        local = srt.indices[mask] - b * chunk
        per_bank.append((local, local.copy(), srt.values[mask]))
        max_count = max(max_count, local.size)
    total = max(group, math.ceil(max_count / group) * group)
    engine.host_write_triples(
        name, [padded_triples(r, c, v, total) for r, c, v in per_bank])
    return total


def spaxpy(alpha: float, x: SparseVector, y: np.ndarray,
           num_banks: int = 16, precision: str = "fp64") -> KernelRun:
    """SpAXPY: returns alpha * x_sp + y_d."""
    y = np.asarray(y, dtype=np.float64)
    if x.length != y.size:
        raise ExecutionError("SpAXPY operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, y=y)
    total = _sparse_setup(engine, "xsp", x, chunk)
    group = _group(engine)
    total_groups = groups_for(total, group)

    stats = LaunchStats()
    offset = 0
    first = True
    for step in passes(total_groups):
        program = programs.spaxpy_program(step, group, precision)

        def beats(lo=offset, n=step):
            for g in range(lo, lo + n):
                yield Beat("xsp", g)
                for _ in range(group):
                    yield Beat("y", 0, write=True)

        stats.merge(launch(engine, program, beats(),
                           scalar=alpha if first else None,
                           reset_registers=first))
        offset += step
        first = False
    return KernelRun(join_even(engine.host_read_dense("y"), y.size),
                     stats, engine)


def spdot(x: SparseVector, y: np.ndarray, num_banks: int = 16,
          precision: str = "fp64") -> KernelRun:
    """SpDOT: returns x_sp . y_d."""
    y = np.asarray(y, dtype=np.float64)
    if x.length != y.size:
        raise ExecutionError("SpDOT operands must have equal length")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, y=y)
    total = _sparse_setup(engine, "xsp", x, chunk)
    group = _group(engine)
    total_groups = groups_for(total, group)

    stats = LaunchStats()
    offset = 0
    first = True
    for step in passes(total_groups):
        program = programs.spdot_program(step, group, precision)

        def beats(lo=offset, n=step):
            for g in range(lo, lo + n):
                yield Beat("xsp", g)
                for _ in range(group):
                    yield Beat("y", 0)

        stats.merge(launch(engine, program, beats(),
                           scalar=0.0 if first else None,
                           reset_registers=first))
        offset += step
        first = False
    return KernelRun(float(np.sum(read_scalars(engine))), stats, engine)


def gather(dense: np.ndarray, num_banks: int = 16,
           precision: str = "fp64") -> KernelRun:
    """GATHER: returns the SparseVector of non-zeros of *dense*."""
    dense = np.asarray(dense, dtype=np.float64)
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, y=dense)
    group = _group(engine)
    total_groups = groups_for(chunk, group)
    empty = np.full(total_groups * group, -1, dtype=np.int64)
    engine.host_write_triples(
        "xsp", [(empty.copy(), empty.copy(), np.zeros(empty.size))
                for _ in range(num_banks)])

    stats = LaunchStats()
    offset = 0
    for step in passes(total_groups):
        program = programs.gather_program(step, precision)

        def beats(lo=offset, n=step):
            for g in range(lo, lo + n):
                yield Beat("y", g)
                yield Beat("xsp", g, write=True)

        stats.merge(launch(engine, program, beats(),
                           reset_registers=(offset == 0)))
        offset += step

    indices: List[int] = []
    values: List[float] = []
    for b, memory in enumerate(engine.banks):
        region = memory.triples("xsp")
        valid = region.rows >= 0
        indices.extend((region.rows[valid] + b * chunk).tolist())
        values.extend(region.vals[valid].tolist())
    order = np.argsort(indices, kind="stable") if indices else []
    result = SparseVector(dense.size,
                          np.asarray(indices, dtype=np.int64)[order],
                          np.asarray(values)[order])
    return KernelRun(result, stats, engine)


def scatter(x: SparseVector, length: Optional[int] = None,
            base: Optional[np.ndarray] = None, num_banks: int = 16,
            precision: str = "fp64") -> KernelRun:
    """SCATTER: returns a dense vector with x_sp written into *base*."""
    length = x.length if length is None else length
    dense = (np.zeros(length) if base is None
             else np.asarray(base, dtype=np.float64).copy())
    if dense.size != x.length:
        raise ExecutionError("scatter base length mismatch")
    engine = _make_engine(num_banks, precision)
    chunk = _dense_setup(engine, y=dense)
    total = _sparse_setup(engine, "xsp", x, chunk)
    group = _group(engine)
    total_groups = groups_for(total, group)

    stats = LaunchStats()
    offset = 0
    first = True
    for step in passes(total_groups):
        program = programs.scatter_program(step, precision)

        def beats(lo=offset, n=step):
            for g in range(lo, lo + n):
                yield Beat("xsp", g)
                yield Beat("y", 0, write=True)

        stats.merge(launch(engine, program, beats(),
                           reset_registers=first))
        offset += step
        first = False
    return KernelRun(join_even(engine.host_read_dense("y"), length),
                     stats, engine)
