"""Element-wise sparse-sparse vector kernels (the SpVSpV instruction).

pSyncPIM's index calculator supports two matching semantics (§IV-B):

* **intersection** — the binary operation fires only where both operands
  hold a non-zero (element-wise multiply of sparse vectors);
* **union** — where one side is absent, its value is the identity element
  and the other side's value flows through (element-wise add/min/max).

The driver distributes both operands by index range so each bank merges
two locally sorted streams; the merge itself is data-dependent, which is
exactly what the predicated SpVSpV step absorbs: each lock-step inner
iteration advances at least one queue, and two extra drain batches at the
end flush cross-batch leftovers before CEXIT retires the units.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import ExecutionError
from ..formats import SparseVector
from ..isa import assemble
from ..pim import AllBankEngine, Beat, padded_triples
from .base import LaunchStats, launch, passes
from .blas1 import KernelRun, _group, _make_engine


def spvspv_program(outer: int, batch: int, binary: str, set_mode: str,
                   identity: str, precision: str = "fp64"):
    """One merge pass: load a group from each operand, merge, store."""
    writes = 2  # union output of one batch spans at most two groups
    return assemble(f"""
outer:
    SPMOV  SPVQ0, BANK          value={precision}
    SPMOV  SPVQ1, BANK          value={precision}
merge:
    SPVSPV SPVQ2, SPVQ0, SPVQ1 value={precision} binary={binary} s={set_mode} idnt={identity}
    JUMP   merge order=0 count={2 * batch}
store:
    SPMOV  BANK, SPVQ2          value={precision}
    JUMP   store order=1 count={writes}
    CEXIT  SPVQ0|SPVQ1|SPVQ2
    JUMP   outer order=2 count={outer}
    EXIT
""", name=f"spvspv_{binary}_{set_mode}")


def spvspv(x: SparseVector, y: SparseVector, binary: str = "add",
           set_mode: str = "union", identity: str = "zero",
           num_banks: int = 16, precision: str = "fp64") -> KernelRun:
    """z_sp = x_sp (.) y_sp with union or intersection semantics."""
    if x.length != y.length:
        raise ExecutionError("sparse operands must share a length")
    engine = _make_engine(num_banks, precision)
    group = _group(engine)
    chunk = max(group, math.ceil(x.length / num_banks))

    x_banks, x_max = _chunked(x, num_banks, chunk, group)
    y_banks, y_max = _chunked(y, num_banks, chunk, group)
    groups = max(x_max, y_max) // group
    outer = groups + 2  # two drain batches flush cross-batch leftovers
    total_in = outer * group
    engine.host_write_triples(
        "xsp", [padded_triples(r, c, v, total_in) for r, c, v in x_banks])
    engine.host_write_triples(
        "ysp", [padded_triples(r, c, v, total_in) for r, c, v in y_banks])
    out_slots = outer * 2 * group
    pad = np.full(out_slots, -1, dtype=np.int64)
    engine.host_write_triples(
        "zsp", [(pad.copy(), pad.copy(), np.zeros(out_slots))
                for _ in range(num_banks)])

    stats = LaunchStats()
    cursor = 0
    first = True
    for step in passes(outer):
        program = spvspv_program(step, group, binary, set_mode, identity,
                                 precision)

        def beats(lo=cursor, n=step):
            for it in range(lo, lo + n):
                yield Beat("xsp", it)
                yield Beat("ysp", it)
                yield Beat("zsp", 2 * it, write=True)
                yield Beat("zsp", 2 * it + 1, write=True)

        stats.merge(launch(engine, program, beats(),
                           reset_registers=first))
        cursor += step
        first = False

    result = _collect(engine, x.length, chunk)
    return KernelRun(result, stats, engine)


# ----------------------------------------------------------------------
def _chunked(vector: SparseVector, num_banks: int, chunk: int, group: int):
    """Split by index range with chunk-local indices, padded per bank."""
    srt = vector.sorted()
    owners = srt.indices // chunk
    banks = []
    longest = 0
    for b in range(num_banks):
        mask = owners == b
        local = srt.indices[mask] - b * chunk
        banks.append((local, local.copy(), srt.values[mask]))
        longest = max(longest, local.size)
    longest = max(group, math.ceil(longest / group) * group)
    return banks, longest


def _collect(engine: AllBankEngine, length: int, chunk: int) -> SparseVector:
    indices: List[int] = []
    values: List[float] = []
    for b, memory in enumerate(engine.banks):
        region = memory.triples("zsp")
        valid = region.rows >= 0
        global_idx = region.rows[valid] + b * chunk
        in_range = global_idx < length
        indices.extend(global_idx[in_range].tolist())
        values.extend(region.vals[valid][in_range].tolist())
    order = np.argsort(indices, kind="stable") if indices else []
    return SparseVector(length, np.asarray(indices, dtype=np.int64)[order],
                        np.asarray(values)[order])
