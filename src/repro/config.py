"""Architectural configuration for pSyncPIM (paper Tables VII and VIII).

Three frozen dataclasses describe the modelled hardware:

* :class:`HBM2Config` — the memory organisation of one pSyncPIM cube
  (Table VII): bank groups, banks, rows, columns, pseudo-channels, stacks,
  clocking and the external/internal bandwidth split.
* :class:`ProcessingUnitConfig` — the per-bank processing unit (Table VIII):
  datapath width, per-precision ALU counts, register/queue capacities.
* :class:`SystemConfig` — an assembled pSyncPIM system: one or more cubes
  (the paper evaluates 1x and 3x), with derived totals and validation.

All sizes are in bytes, all frequencies in Hz, and all derived values are
computed properties so a config can never be internally inconsistent once
:func:`SystemConfig.validate` has passed.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Optional

from .errors import ConfigError

#: Environment variable selecting the functional execution engine.
ENGINE_ENV = "PSYNCPIM_ENGINE"

#: Engines the functional tier can run on: the vectorized lane engine
#: (default) and the scalar reference oracle.
ENGINE_CHOICES = ("lane", "scalar")

#: Engine used when neither the caller nor the environment chooses one.
DEFAULT_ENGINE = "lane"


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve the functional engine: explicit arg > env var > default.

    Raises :class:`ConfigError` for unknown engine names so typos fail
    loudly instead of silently falling back to a different simulator.
    """
    name = explicit if explicit is not None \
        else os.environ.get(ENGINE_ENV, DEFAULT_ENGINE)
    name = name.strip().lower()
    if name not in ENGINE_CHOICES:
        raise ConfigError(f"unknown engine {name!r}; expected one of "
                          f"{list(ENGINE_CHOICES)}")
    return name

#: Environment variable selecting the planning front-end implementation.
PLANNER_ENV = "PSYNCPIM_PLANNER"

#: Planners the host-side layout tier can run on: the vectorized array
#: pipeline (default) and the scalar reference oracle.
PLANNER_CHOICES = ("fast", "scalar")

#: Planner used when neither the caller nor the environment chooses one.
DEFAULT_PLANNER = "fast"


def resolve_planner(explicit: Optional[str] = None) -> str:
    """Resolve the planning front-end: explicit arg > env var > default.

    Mirrors :func:`resolve_engine` for the host-side planning tier
    (partition, distribution, level scheduling). Unknown names raise
    :class:`ConfigError` so typos fail loudly.
    """
    name = explicit if explicit is not None \
        else os.environ.get(PLANNER_ENV, DEFAULT_PLANNER)
    name = name.strip().lower()
    if name not in PLANNER_CHOICES:
        raise ConfigError(f"unknown planner {name!r}; expected one of "
                          f"{list(PLANNER_CHOICES)}")
    return name


#: Environment variable selecting cross-job batched execution.
BATCH_ENV = "PSYNCPIM_BATCH"

#: Batch modes for sweeps and fuzzing: ``jobs`` stacks same-template jobs
#: into one jobs x banks engine launch; ``off`` runs jobs one at a time.
BATCH_CHOICES = ("jobs", "off")

#: Batch mode used when neither the caller nor the environment chooses one.
#: Off by default: batching is an opt-in throughput tier, and the per-job
#: path remains the semantics-defining baseline it is compared against.
DEFAULT_BATCH = "off"


def resolve_batch(explicit: Optional[str] = None) -> str:
    """Resolve the cross-job batch mode: explicit arg > env var > default.

    Mirrors :func:`resolve_engine` for the jobs dimension (sweep runner,
    ISA fuzzer). Unknown names raise :class:`ConfigError` so typos fail
    loudly instead of silently running the other execution path.
    """
    name = explicit if explicit is not None \
        else os.environ.get(BATCH_ENV, DEFAULT_BATCH)
    name = name.strip().lower()
    if name not in BATCH_CHOICES:
        raise ConfigError(f"unknown batch mode {name!r}; expected one of "
                          f"{list(BATCH_CHOICES)}")
    return name


#: Environment variable selecting the partitioning strategy.
STRATEGY_ENV = "PSYNCPIM_STRATEGY"

#: Registered partitioning strategies (see :mod:`repro.core.strategies`):
#: the paper's fixed row-cut scheme, three SparseP-style alternatives, and
#: the cost-model auto-tuner that picks per matrix.
STRATEGY_CHOICES = ("paper", "nnz-rows", "2d-grid", "nnz-2d", "auto")

#: Strategy used when neither the caller nor the environment chooses one.
#: The paper scheme stays the default so the unconfigured path remains
#: bitwise identical to the pre-strategy-library behaviour.
DEFAULT_STRATEGY = "paper"


def resolve_strategy(explicit: Optional[str] = None) -> str:
    """Resolve the partitioning strategy: explicit arg > env var > default.

    Mirrors :func:`resolve_engine` for the partitioning front-end (see
    :mod:`repro.core.strategies`). Unknown names raise
    :class:`ConfigError` so typos fail loudly instead of silently
    planning with a different layout.
    """
    name = explicit if explicit is not None \
        else os.environ.get(STRATEGY_ENV, DEFAULT_STRATEGY)
    name = name.strip().lower()
    if name not in STRATEGY_CHOICES:
        raise ConfigError(f"unknown strategy {name!r}; expected one of "
                          f"{list(STRATEGY_CHOICES)}")
    return name


#: Environment variable selecting the channel-sharded execution width.
CHANNELS_ENV = "PSYNCPIM_CHANNELS"


def resolve_channels(explicit: Optional[int] = None) -> Optional[int]:
    """Resolve the channel-sharding width: explicit arg > env var > None.

    ``None`` selects the representative-channel model: work is laid out
    over every processing unit and the synthesised trace covers one
    pseudo-channel under the symmetric-broadcast assumption (the
    pre-scale-out behaviour, bitwise unchanged). An integer ``C >= 1``
    selects the channel-sharded model instead: tiles are sharded over
    ``C`` explicitly modelled channels, each with its own 16-bank
    distribution, command stream and scheduler clock.

    Mirrors :func:`resolve_engine`: invalid values raise
    :class:`ConfigError` so typos fail loudly rather than silently
    running the other execution model.
    """
    raw: "Optional[object]" = explicit
    if raw is None:
        text = os.environ.get(CHANNELS_ENV, "").strip()
        if not text:
            return None
        raw = text
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"channel count must be an integer, got {raw!r}") from None
    if value < 1:
        raise ConfigError(f"channel count must be >= 1, got {value}")
    return value


#: Environment variable selecting the SpMM right-hand-side width.
RHS_ENV = "PSYNCPIM_RHS"


def resolve_rhs(explicit: Optional[int] = None) -> int:
    """Resolve the SpMM right-hand-side count: explicit arg > env var > 1.

    ``1`` is the degenerate single-vector case (bitwise identical to
    SpMV); ``k >= 2`` streams *k* dense columns through one resident
    plan. Mirrors :func:`resolve_channels`: invalid values raise
    :class:`ConfigError` so typos fail loudly rather than silently
    running a different workload width.
    """
    raw: "Optional[object]" = explicit
    if raw is None:
        text = os.environ.get(RHS_ENV, "").strip()
        if not text:
            return 1
        raw = text
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"rhs count must be an integer, got {raw!r}") from None
    if value < 1:
        raise ConfigError(f"rhs count must be >= 1, got {value}")
    return value


#: Environment variable enabling observability recording (see
#: :mod:`repro.obs`); mirrored here so CLI flag resolution lives next to
#: the other ``PSYNCPIM_*`` precedence helpers without importing obs.
OBS_ENV = "PSYNCPIM_OBS"

#: Environment variable enabling cycle attribution
#: (:mod:`repro.obs.attrib`) on runs that support it.
ATTRIB_ENV = "PSYNCPIM_ATTRIB"

#: Spellings accepted by the boolean ``PSYNCPIM_*`` switches. Duplicated
#: from :func:`repro.obs.recorder.env_enabled` (config must stay
#: import-free of obs, which imports back into the core for pricing).
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


def _resolve_switch(explicit: Optional[bool], env: str) -> bool:
    """Shared precedence for boolean switches: explicit arg > env var."""
    if explicit is not None:
        return bool(explicit)
    text = os.environ.get(env, "").strip().lower()
    if text in _TRUTHY:
        return True
    if text in _FALSY:
        return False
    raise ConfigError(
        f"{env} must be one of {sorted(_TRUTHY | _FALSY)!r}, "
        f"got {text!r}")


def resolve_obs(explicit: Optional[bool] = None) -> bool:
    """Resolve the observability switch: explicit arg > ``PSYNCPIM_OBS``.

    Mirrors :func:`resolve_channels`; garbage env values raise
    :class:`ConfigError` instead of silently running unobserved.
    """
    return _resolve_switch(explicit, OBS_ENV)


def resolve_attrib(explicit: Optional[bool] = None) -> bool:
    """Resolve the cycle-attribution switch: explicit arg >
    ``PSYNCPIM_ATTRIB``.

    Attribution is post-hoc over the priced trace and adds a few percent
    to scheduling time, so it stays opt-in like :func:`resolve_obs`.
    """
    return _resolve_switch(explicit, ATTRIB_ENV)


#: Precision name -> element size in bytes, for every precision the VALU
#: supports (Table VIII: INT8 through FP64).
PRECISION_BYTES: Dict[str, int] = {
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
    "fp16": 2,
    "fp32": 4,
    "fp64": 8,
}

#: Number of parallel ALU lanes per precision (Table VIII).
ALU_LANES: Dict[str, int] = {
    "int8": 32,
    "int16": 16,
    "fp16": 16,
    "int32": 8,
    "fp32": 8,
    "int64": 4,
    "fp64": 4,
}


def element_size(precision: str) -> int:
    """Return the element size in bytes for *precision*.

    Raises :class:`ConfigError` for unknown precision names so that typos in
    kernel code fail loudly instead of silently defaulting.
    """
    try:
        return PRECISION_BYTES[precision]
    except KeyError:
        raise ConfigError(f"unknown precision {precision!r}; expected one of "
                          f"{sorted(PRECISION_BYTES)}") from None


@dataclass(frozen=True)
class HBM2Config:
    """Memory organisation of one pSyncPIM HBM2 cube (paper Table VII)."""

    num_bankgroups: int = 4
    banks_per_group: int = 4
    num_rows: int = 16384
    #: Number of column addresses per row; one column is ``column_bytes``.
    num_columns: int = 64
    column_bytes: int = 16
    num_stacks: int = 8
    num_pseudo_channels: int = 16
    #: Address-bit order, most-significant first (Table VII, rank is 0 bit).
    address_mapping: str = "rorabgbachco"
    clock_hz: float = 1e9
    external_bandwidth: float = 256e9   # bytes/s to the host
    internal_bandwidth: float = 2e12    # bytes/s aggregated over banks
    capacity_bytes: int = 4 << 30
    #: Pseudo-channels sharing one physical channel's CA bus (HBM2 splits
    #: each 128-bit channel into two 64-bit pseudo-channels). Address
    #: mappings with an explicit ``pc`` token size their ``ch`` field by
    #: :attr:`num_physical_channels` and ``pc`` by this.
    pseudo_channels_per_channel: int = 2

    @property
    def banks_per_channel(self) -> int:
        """Banks addressable by one pseudo-channel command (4 groups x 4)."""
        return self.num_bankgroups * self.banks_per_group

    @property
    def num_physical_channels(self) -> int:
        """Physical channels: pseudo-channels / pseudo-channels-per-channel."""
        return self.num_pseudo_channels // self.pseudo_channels_per_channel

    @property
    def total_banks(self) -> int:
        """All banks of the cube across its pseudo-channels."""
        return self.banks_per_channel * self.num_pseudo_channels

    @property
    def row_bytes(self) -> int:
        """Bytes stored in one open row of one bank (1 KB for HBM2)."""
        return self.num_columns * self.column_bytes

    @property
    def bank_bytes(self) -> int:
        """Capacity of a single bank."""
        return self.num_rows * self.row_bytes

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ConfigError` otherwise."""
        for name in ("num_bankgroups", "banks_per_group", "num_rows",
                     "num_columns", "column_bytes", "num_stacks",
                     "num_pseudo_channels", "pseudo_channels_per_channel"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.num_pseudo_channels % self.pseudo_channels_per_channel:
            raise ConfigError(
                f"{self.num_pseudo_channels} pseudo-channels do not split "
                f"into physical channels of "
                f"{self.pseudo_channels_per_channel}")
        if self.bank_bytes * self.total_banks != self.capacity_bytes:
            raise ConfigError(
                "capacity mismatch: banks provide "
                f"{self.bank_bytes * self.total_banks} bytes but capacity is "
                f"{self.capacity_bytes} bytes")
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")
        if self.external_bandwidth >= self.internal_bandwidth:
            raise ConfigError("all-bank PIM requires internal bandwidth to "
                              "exceed the external interface")


@dataclass(frozen=True)
class ProcessingUnitConfig:
    """Per-bank processing unit specification (paper Table VIII)."""

    datapath_bytes: int = 32
    clock_hz: float = 250e6
    instruction_slots: int = 32
    instruction_bytes: int = 4
    scalar_register_bytes: int = 16
    num_dense_registers: int = 3
    dense_register_bytes: int = 32
    num_sparse_queues: int = 3
    sparse_queue_bytes: int = 192
    #: Each sparse vector queue splits into row/column/value sub-queues.
    subqueues_per_queue: int = 3

    @property
    def subqueue_bytes(self) -> int:
        """Capacity of one row/col/value sub-queue (64 B in the paper)."""
        return self.sparse_queue_bytes // self.subqueues_per_queue

    def alu_lanes(self, precision: str) -> int:
        """Parallel ALU lanes available for *precision* (Table VIII)."""
        element_size(precision)  # validates the name
        return ALU_LANES[precision]

    def throughput_ops(self, precision: str) -> float:
        """Peak per-unit throughput in operations/second for *precision*.

        One operation per ALU lane per PU clock: e.g. INT8 has 32 lanes at
        250 MHz -> 8 GIOPS peak for a single processing unit.
        """
        return self.alu_lanes(precision) * self.clock_hz

    @property
    def control_register_bytes(self) -> int:
        """Size of the control (instruction) register file: 128 B."""
        return self.instruction_slots * self.instruction_bytes

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ConfigError` otherwise."""
        if self.sparse_queue_bytes % self.subqueues_per_queue:
            raise ConfigError("sparse queue must divide into equal sub-queues")
        if self.control_register_bytes != 128:
            raise ConfigError("paper specifies a 128 B control register "
                              f"(32 x 4 B); got {self.control_register_bytes}")
        if self.datapath_bytes <= 0 or self.clock_hz <= 0:
            raise ConfigError("datapath width and clock must be positive")
        if self.subqueue_bytes < self.datapath_bytes:
            raise ConfigError("a sub-queue must hold at least one 32 B beat")


@dataclass(frozen=True)
class SystemConfig:
    """A complete pSyncPIM system: ``num_cubes`` HBM2 cubes with one PU/bank.

    The paper evaluates the 1x configuration (256 processing units,
    256 GB/s external) and a 3x configuration whose 768 GB/s external
    bandwidth matches the RTX 3080's 760 GB/s.
    """

    memory: HBM2Config = dataclasses.field(default_factory=HBM2Config)
    unit: ProcessingUnitConfig = dataclasses.field(
        default_factory=ProcessingUnitConfig)
    num_cubes: int = 1
    #: Sub-matrix tiles are bounded by one memory row on each dimension.
    submatrix_limit_bytes: int = 1024

    @property
    def total_units(self) -> int:
        """Processing units in the system (one per bank; 256 per cube)."""
        return self.memory.total_banks * self.num_cubes

    @property
    def external_bandwidth(self) -> float:
        """Aggregate host-visible bandwidth in bytes/s."""
        return self.memory.external_bandwidth * self.num_cubes

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate bank-level bandwidth in bytes/s."""
        return self.memory.internal_bandwidth * self.num_cubes

    def peak_throughput(self, precision: str) -> float:
        """System-wide peak ALU throughput (ops/s) for *precision*.

        Table VIII reports per-cube numbers, e.g. FP64:
        4 lanes x 250 MHz x 256 units / cube = 3.2 GFLOPS per stack group.
        """
        return self.unit.throughput_ops(precision) * self.total_units

    def vector_capacity(self, precision: str) -> int:
        """Max elements of an input/output vector tile in one memory row."""
        return self.submatrix_limit_bytes // element_size(precision)

    def validate(self) -> "SystemConfig":
        """Validate all nested configs and cross-cutting constraints."""
        self.memory.validate()
        self.unit.validate()
        if self.num_cubes <= 0:
            raise ConfigError("num_cubes must be positive")
        if self.submatrix_limit_bytes > self.memory.row_bytes:
            raise ConfigError(
                "sub-matrix tiles must fit one memory row: limit "
                f"{self.submatrix_limit_bytes} exceeds row size "
                f"{self.memory.row_bytes}")
        return self


def default_system(num_cubes: int = 1) -> SystemConfig:
    """Build and validate the paper's evaluation configuration.

    ``num_cubes=1`` is the baseline pSyncPIM; ``num_cubes=3`` is the paper's
    3x configuration used to match GPU external bandwidth in Figure 8.
    """
    return SystemConfig(num_cubes=num_cubes).validate()


def gddr6_aim_system(num_devices: int = 1) -> SystemConfig:
    """A GDDR6-AiM-style platform running the pSyncPIM execution model.

    The paper contrasts two commercial all-bank PIM products (§II-B):
    Samsung's HBM-PIM (the evaluation substrate, :func:`default_system`)
    and SK Hynix's GDDR6-AiM. This configuration approximates a 16-chip
    AiM card: per chip, 2 channels x 16 banks with 2 KB rows at 1 GHz
    command rate, one processing unit per bank — 512 units per card with
    1 TB/s aggregate external bandwidth but less internal bandwidth per
    unit than HBM2 stacks. The same partitioning/lock-step machinery runs
    unchanged; only the geometry differs.
    """
    memory = HBM2Config(
        num_bankgroups=4,
        banks_per_group=4,
        num_rows=16384,
        num_columns=64,
        column_bytes=32,          # 2 KB rows (GDDR6 page size)
        num_stacks=16,            # chips on the card
        num_pseudo_channels=32,   # 2 channels x 16 chips
        address_mapping="rorabgbachco",
        clock_hz=1e9,
        external_bandwidth=1024e9,
        internal_bandwidth=4e12,
        capacity_bytes=32 * 16 * 16384 * 2048,
    )
    return SystemConfig(memory=memory, num_cubes=num_devices,
                        submatrix_limit_bytes=2048).validate()


#: Throughput figures as printed in Table VIII (GOPS / GFLOPS). The paper
#: does not state the aggregation level explicitly; the per-unit peak is
#: ``alu_lanes(precision) * clock_hz`` and these constants are kept verbatim
#: for reporting alongside modelled numbers in the Figure 10 benchmark.
TABLE_VIII_THROUGHPUT_GOPS: Dict[str, float] = {
    "int8": 25.6,
    "int16": 12.8,
    "fp16": 12.8,
    "int32": 6.4,
    "fp32": 6.4,
    "int64": 3.2,
    "fp64": 3.2,
}
