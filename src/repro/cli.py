"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the common workflows without writing Python:

* ``info``   — the modelled hardware (Tables VII/VIII, area, baselines).
* ``suite``  — the Table IX matrix registry.
* ``spmv``   — run one SpMV and print the plan, timing and energy.
* ``spmm``   — run one SpMM (k dense right-hand sides through one
  resident plan) and print the per-column amortisation.
* ``sptrsv`` — factorise a suite matrix with ILDU and time both solves.
* ``app``    — run one Table II application on the GPU and PIM backends.
* ``sweep``  — run a batch of jobs across worker processes with
  content-addressed artifact caching (see :mod:`repro.sweep`).
* ``tune``   — score every partitioning strategy per matrix and print
  the win/loss table vs the paper's row-cut scheme (see
  :mod:`repro.core.strategies`).
* ``profile`` — render an observability run (``PSYNCPIM_OBS=1``) as
  per-phase / per-bank / DRAM / energy tables (see :mod:`repro.obs`).
* ``attrib`` — cycle attribution: decompose every (channel, bank)
  lane's cycles into exclusive categories, with phase timeline and
  critical path (see :mod:`repro.obs.attrib`); writes bundles and a
  self-contained HTML report.
* ``diff``   — compare two attribution bundles and attribute the cycle
  delta per category and per matrix (regression triage).
* ``check``  — run the independent verification oracles: golden-trace
  comparison, JEDEC protocol checking, and the seeded ISA fuzzer (see
  :mod:`repro.check`); ``--update-golden`` re-baselines the snapshots.

Matrices come from the Table IX registry (``--matrix``) or a Matrix Market
file (``--mtx``). With ``PSYNCPIM_OBS=1`` in the environment every command
exports its trace and metrics on exit (``PSYNCPIM_OBS_DIR`` or
``./psyncpim-obs``), ready for ``psyncpim profile`` or chrome://tracing.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from . import __version__, obs
from .analysis import format_table, table_x_model, unit_area
from .baselines import GPUModel, SpaceAModel
from .config import STRATEGY_CHOICES, default_system
from .core import PSyncPIM, time_spmm, time_spmv
from .dram import TimingParams
from .errors import ReproError
from .formats import (generate, matrix_spec, read_matrix_market,
                      suite_names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        code = args.handler(args)
        _maybe_export_obs(args)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); die quietly like a
        # well-behaved unix tool instead of dumping a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


def _maybe_export_obs(args) -> None:
    """Export the observability run when ``PSYNCPIM_OBS`` was on."""
    if (args.command == "profile" or not obs.enabled()
            or not obs.recorder().update_count):
        return
    paths = obs.export()
    print(f"\nobs: wrote {', '.join(str(p) for p in paths.values())}",
          file=sys.stderr)
    print("obs: view with `psyncpim profile` or load trace.json in "
          "chrome://tracing", file=sys.stderr)


# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="psyncpim",
        description="pSyncPIM (ISCA 2024) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    info = sub.add_parser("info", help="show the modelled hardware")
    info.set_defaults(handler=_cmd_info)

    suite = sub.add_parser("suite", help="list the Table IX matrix suite")
    suite.set_defaults(handler=_cmd_suite)

    spmv = sub.add_parser("spmv", help="run and price one SpMV")
    _matrix_args(spmv)
    spmv.add_argument("--precision", default="fp64",
                      choices=["fp64", "fp32", "int32", "int16", "int8"])
    spmv.add_argument("--format", dest="matrix_format", default="coo",
                      choices=["coo", "csr", "bitmap"])
    spmv.add_argument("--cubes", type=int, default=1)
    spmv.add_argument("--channels", type=int, default=None,
                      help="shard across N explicitly modelled channels "
                           "(default: PSYNCPIM_CHANNELS or the "
                           "representative-channel model)")
    spmv.add_argument("--strategy", default=None,
                      choices=list(STRATEGY_CHOICES),
                      help="partitioning strategy (default: "
                           "PSYNCPIM_STRATEGY or paper; auto = tune per "
                           "matrix)")
    spmv.add_argument("--no-compress", action="store_true",
                      help="disable the Fig. 6 matrix compression")
    _obs_args(spmv)
    spmv.set_defaults(handler=_cmd_spmv)

    spmm = sub.add_parser("spmm",
                          help="run and price one SpMM (k dense rhs)")
    _matrix_args(spmm)
    spmm.add_argument("--rhs", type=int, default=None,
                      help="dense right-hand-side columns (default: "
                           "PSYNCPIM_RHS or 1)")
    spmm.add_argument("--precision", default="fp64",
                      choices=["fp64", "fp32", "int32", "int16", "int8"])
    spmm.add_argument("--format", dest="matrix_format", default="coo",
                      choices=["coo", "csr", "bitmap"])
    spmm.add_argument("--cubes", type=int, default=1)
    spmm.add_argument("--channels", type=int, default=None,
                      help="shard across N explicitly modelled channels "
                           "(default: PSYNCPIM_CHANNELS or the "
                           "representative-channel model)")
    spmm.add_argument("--strategy", default=None,
                      choices=list(STRATEGY_CHOICES),
                      help="partitioning strategy (default: "
                           "PSYNCPIM_STRATEGY or paper; auto = tune per "
                           "matrix)")
    spmm.add_argument("--no-compress", action="store_true",
                      help="disable the Fig. 6 matrix compression")
    _obs_args(spmm)
    spmm.set_defaults(handler=_cmd_spmm)

    sptrsv = sub.add_parser("sptrsv",
                            help="ILDU-factorise and time both solves")
    _matrix_args(sptrsv)
    sptrsv.add_argument("--cubes", type=int, default=1)
    sptrsv.add_argument("--channels", type=int, default=None,
                        help="shard across N explicitly modelled channels "
                             "(default: PSYNCPIM_CHANNELS or the "
                             "representative-channel model)")
    sptrsv.add_argument("--strategy", default=None,
                        choices=list(STRATEGY_CHOICES),
                        help="partitioning strategy for the update SpMVs "
                             "(default: PSYNCPIM_STRATEGY or paper)")
    _obs_args(sptrsv)
    sptrsv.set_defaults(handler=_cmd_sptrsv)

    app = sub.add_parser("app", help="run a Table II application")
    _matrix_args(app)
    app.add_argument("name", choices=["bfs", "cc", "pr", "sssp", "tc",
                                      "pcg", "pbicgstab"])
    app.set_defaults(handler=_cmd_app)

    sweep = sub.add_parser(
        "sweep", help="run a job batch in parallel with artifact caching")
    sweep.add_argument("--kernel", default="spmv",
                       choices=["spmv", "spmm", "sptrsv", "suite", "fuzz"])
    sweep.add_argument("--rhs", type=int, default=None,
                       help="SpMM right-hand-side columns (default: "
                            "PSYNCPIM_RHS or 1; other kernels ignore it)")
    sweep.add_argument("--matrices", default=None,
                       help="comma-separated Table IX names (default: the "
                            "kernel's Table IX assignment)")
    sweep.add_argument("--scale", type=float, default=None,
                       help="dimension scale (default: PSYNCPIM_SCALE "
                            "or 0.05)")
    sweep.add_argument("--precision", default="fp64",
                       choices=["fp64", "fp32", "int32", "int16", "int8"])
    sweep.add_argument("--cubes", type=int, default=1)
    sweep.add_argument("--platform", default="hbm2",
                       choices=["hbm2", "gddr6"])
    sweep.add_argument("--mode", default="ab", choices=["ab", "pb"])
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: PSYNCPIM_WORKERS "
                            "or min(4, cores); 1 = serial)")
    sweep.add_argument("--batch", default=None, choices=["jobs", "off"],
                       help="cross-job batched execution (default: "
                            "PSYNCPIM_BATCH or off)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute everything, never touch the cache")
    sweep.add_argument("--cache-dir", default=None,
                       help="artifact cache root (default: "
                            "PSYNCPIM_CACHE_DIR or ~/.cache/psyncpim)")
    sweep.add_argument("--energy", action="store_true",
                       help="price energy alongside cycles")
    sweep.add_argument("--channels", type=int, default=None,
                       help="shard across N explicitly modelled channels "
                            "(default: PSYNCPIM_CHANNELS or the "
                            "representative-channel model)")
    sweep.add_argument("--strategy", default=None,
                       choices=list(STRATEGY_CHOICES),
                       help="partitioning strategy (default: "
                            "PSYNCPIM_STRATEGY or paper; auto = tune per "
                            "matrix)")
    _obs_args(sweep)
    sweep.add_argument("--attrib-out", default=None, metavar="PATH",
                       help="write the per-job attribution bundle "
                            "(.json or pickle; implies --attrib)")
    sweep.set_defaults(handler=_cmd_sweep)

    tune = sub.add_parser(
        "tune", help="per-matrix strategy win/loss table vs the paper")
    tune.add_argument("--matrices", default=None,
                      help="comma-separated Table IX names (default: the "
                           "SpMV Table IX assignment)")
    tune.add_argument("--scale", type=float, default=None,
                      help="dimension scale (default: PSYNCPIM_SCALE "
                           "or 0.05)")
    tune.add_argument("--precision", default="fp64",
                      choices=["fp64", "fp32", "int32", "int16", "int8"])
    tune.add_argument("--mode", default="ab", choices=["ab", "pb"])
    tune.add_argument("--channels", type=int, default=None,
                      help="tune for the N-channel sharded layout "
                           "(default: PSYNCPIM_CHANNELS or the "
                           "representative-channel model)")
    tune.set_defaults(handler=_cmd_tune)

    attrib = sub.add_parser(
        "attrib", help="cycle attribution: per-lane category breakdown, "
                       "phase timeline and critical path")
    attrib.add_argument("--kernel", default="spmv",
                        choices=["spmv", "sptrsv"])
    attrib.add_argument("--matrices", default=None,
                        help="comma-separated Table IX names (default: "
                             "the kernel's Table IX assignment)")
    attrib.add_argument("--mtx", default=None,
                        help="Matrix Market file (overrides --matrices)")
    attrib.add_argument("--scale", type=float, default=None,
                        help="dimension scale (default: PSYNCPIM_SCALE "
                             "or 0.05)")
    attrib.add_argument("--seed", type=int, default=0)
    attrib.add_argument("--precision", default="fp64",
                        choices=["fp64", "fp32", "int32", "int16", "int8"])
    attrib.add_argument("--mode", default="ab", choices=["ab", "pb"],
                        help="SpMV PIM mode (ignored for sptrsv)")
    attrib.add_argument("--channels", type=int, default=None,
                        help="shard across N explicitly modelled channels "
                             "(default: PSYNCPIM_CHANNELS or the "
                             "representative-channel model)")
    attrib.add_argument("--strategy", default=None,
                        choices=list(STRATEGY_CHOICES))
    attrib.add_argument("--out", default=None, metavar="PATH",
                        help="write the RunReport bundle (.json for a "
                             "stable text artifact, else pickle)")
    attrib.add_argument("--html", default=None, metavar="PATH",
                        help="write a self-contained HTML report")
    attrib.add_argument("--quiet", action="store_true",
                        help="only print the bundle summary table")
    attrib.set_defaults(handler=_cmd_attrib)

    diff = sub.add_parser(
        "diff", help="compare two attribution bundles and attribute the "
                     "cycle delta per category and per matrix")
    diff.add_argument("base", help="baseline bundle (psyncpim attrib "
                                   "--out)")
    diff.add_argument("new", help="candidate bundle to compare")
    diff.add_argument("--top", type=int, default=5,
                      help="regressing/improving runs to list (default 5)")
    diff.add_argument("--fail-above", type=float, default=None,
                      metavar="PCT",
                      help="exit 1 when total cycles regress by more "
                           "than PCT percent (default: always exit 0)")
    diff.set_defaults(handler=_cmd_diff)

    profile = sub.add_parser(
        "profile", help="render a PSYNCPIM_OBS run as profile tables")
    profile.add_argument("path", nargs="?", default=None,
                         help="obs output dir or metrics.json (default: "
                              "PSYNCPIM_OBS_DIR or ./psyncpim-obs)")
    profile.add_argument("--banks", type=int, default=16,
                         help="per-bank table rows to show (default 16)")
    profile.set_defaults(handler=_cmd_profile)

    check = sub.add_parser(
        "check", help="run the independent verification oracles")
    check.add_argument("--fuzz", type=int, default=0, metavar="N",
                       help="also run N seeded fuzz programs through all "
                            "three engines (0 = skip)")
    check.add_argument("--seed", type=int, default=0,
                       help="first fuzz seed (default 0)")
    check.add_argument("--batch", default=None, choices=["jobs", "off"],
                       help="batched fuzz execution (default: "
                            "PSYNCPIM_BATCH or off)")
    check.add_argument("--group-size", type=int, default=None,
                       help="seeds per batch group (default 8 when "
                            "batching, 1 otherwise)")
    check.add_argument("--golden-dir", default=None,
                       help="golden snapshot directory (default: the "
                            "checkout's tests/golden)")
    check.add_argument("--update-golden", action="store_true",
                       help="re-baseline the golden snapshots instead of "
                            "comparing them")
    check.add_argument("--skip-golden", action="store_true",
                       help="skip the golden-trace comparison")
    check.add_argument("--skip-protocol", action="store_true",
                       help="skip the JEDEC protocol check")
    check.set_defaults(handler=_cmd_check)
    return parser


def _obs_args(parser: argparse.ArgumentParser) -> None:
    """``--obs`` / ``--attrib`` switches (explicit flag > env var)."""
    parser.add_argument("--obs", action="store_true", default=None,
                        help="record observability spans/counters for "
                             "this run (same as PSYNCPIM_OBS=1)")
    parser.add_argument("--attrib", action="store_true", default=None,
                        help="print the cycle-attribution breakdown "
                             "(same as PSYNCPIM_ATTRIB=1)")


def _resolve_obs_flags(args) -> bool:
    """Apply ``--obs`` and resolve ``--attrib`` for a run command."""
    from .config import resolve_attrib, resolve_obs
    if resolve_obs(getattr(args, "obs", None)):
        obs.enable()
    return resolve_attrib(getattr(args, "attrib", None))


def _matrix_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--matrix", default="poisson3Da",
                        help="Table IX matrix name (see `suite`)")
    parser.add_argument("--mtx", default=None,
                        help="Matrix Market file (overrides --matrix)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="dimension scale for suite matrices")
    parser.add_argument("--seed", type=int, default=0)


def _load_matrix(args):
    if args.mtx:
        return read_matrix_market(args.mtx)
    return generate(args.matrix, scale=args.scale)


# ----------------------------------------------------------------------
def _cmd_info(args) -> int:
    cfg = default_system()
    mem, pu = cfg.memory, cfg.unit
    print(format_table(["field", "value"], [
        ["protocol", "HBM2"],
        ["bank groups x banks", f"{mem.num_bankgroups} x "
                                f"{mem.banks_per_group}"],
        ["pseudo channels", mem.num_pseudo_channels],
        ["rows x row bytes", f"{mem.num_rows} x {mem.row_bytes}"],
        ["capacity", f"{mem.capacity_bytes >> 30} GB"],
        ["ext / int bandwidth", f"{mem.external_bandwidth / 1e9:.0f} / "
                                f"{mem.internal_bandwidth / 1e9:.0f} GB/s"],
        ["processing units", cfg.total_units],
        ["PU clock / datapath", f"{pu.clock_hz / 1e6:.0f} MHz / "
                                f"{pu.datapath_bytes} B"],
        ["registers", f"{pu.num_dense_registers} x "
                      f"{pu.dense_register_bytes} B dense, "
                      f"{pu.scalar_register_bytes} B scalar"],
        ["sparse queues", f"{pu.num_sparse_queues} x "
                          f"{pu.sparse_queue_bytes} B"],
    ], title="pSyncPIM configuration (paper Tables VII / VIII)"))
    area = unit_area()
    model = table_x_model()
    print(f"\narea: {area.per_unit:.3f} mm^2/unit, "
          f"{model['total_area_mm2']:.2f} mm^2/die "
          f"(paper: {model['paper_total_area_mm2']} mm^2)")
    print(f"baselines: {GPUModel().config.name}, "
          f"{SpaceAModel().config.name}")
    return 0


def _cmd_suite(args) -> int:
    rows = []
    for name in suite_names():
        spec = matrix_spec(name)
        rows.append([name, spec.dimension, f"{spec.density:.2e}",
                     spec.kind, " ".join(spec.applications)])
    print(format_table(["matrix", "dimension", "density", "pattern",
                        "used by"], rows,
                       title="Table IX evaluation suite"))
    return 0


def _cmd_spmv(args) -> int:
    want_attrib = _resolve_obs_flags(args)
    matrix = _load_matrix(args)
    pim = PSyncPIM(num_cubes=args.cubes, precision=args.precision,
                   channels=args.channels, strategy=args.strategy)
    x = np.random.default_rng(args.seed).random(matrix.shape[1])
    result = pim.spmv(matrix, x, compress=not args.no_compress,
                      precision=args.precision,
                      matrix_format=args.matrix_format)
    assert np.allclose(result.y, matrix.matvec(x))
    ex = result.execution
    ab = pim.time_spmv(result, with_energy=True)
    pb = time_spmv(ex, pim.config, mode="pb")
    gpu = GPUModel().spmv_seconds(*matrix.shape, matrix.nnz,
                                  args.precision)
    watts = ab.energy.average_power_watts(ab.cycles, TimingParams())
    print(format_table(["metric", "value"], [
        ["matrix", f"{matrix.shape[0]}x{matrix.shape[1]}, "
                   f"nnz={matrix.nnz}"],
        ["tiles / rounds", f"{len(result.plan.tiles)} / {ex.num_rounds}"],
        ["banks used / imbalance", f"{ex.banks_used}/{ex.num_banks} / "
                                   f"{ex.imbalance:.2f}"],
        ["staged input / output", f"{ex.input_bytes / 1024:.1f} / "
                                  f"{ex.output_bytes / 1024:.1f} KB"],
        ["all-bank time", f"{ab.seconds * 1e6:.2f} us "
                          f"({ab.commands} commands)"],
        ["per-bank time", f"{pb.seconds * 1e6:.2f} us "
                          f"({pb.seconds / ab.seconds:.2f}x slower)"],
        ["RTX 3080 estimate", f"{gpu * 1e6:.2f} us "
                              f"(speedup {gpu / ab.seconds:.2f}x)"],
        ["energy / power", f"{ab.energy.total_joules * 1e6:.1f} uJ / "
                           f"{watts:.2f} W"],
    ], title=f"SpMV on pSyncPIM ({args.precision}, "
             f"{args.matrix_format})"))
    if want_attrib:
        attribution, perf = obs.attribute_spmv(ex, pim.config, mode="ab")
        report = obs.build_run_report(
            attribution, perf, label=f"spmv/{args.matrix}", kind="spmv",
            matrix=args.matrix, mode="ab", channels=ex.num_channels,
            strategy=args.strategy or "", precision=args.precision,
            config=pim.config, alu_operations=2 * ex.total_elements)
        print()
        print(obs.render_report(report))
    return 0


def _cmd_spmm(args) -> int:
    from .config import resolve_rhs
    want_attrib = _resolve_obs_flags(args)
    matrix = _load_matrix(args)
    num_rhs = resolve_rhs(args.rhs)
    pim = PSyncPIM(num_cubes=args.cubes, precision=args.precision,
                   channels=args.channels, strategy=args.strategy)
    x = np.random.default_rng(args.seed).random((matrix.shape[1],
                                                 num_rhs))
    result = pim.spmm(matrix, x, compress=not args.no_compress,
                      precision=args.precision,
                      matrix_format=args.matrix_format)
    for j in range(num_rhs):
        assert np.allclose(result.y[:, j], matrix.matvec(x[:, j]))
    ex = result.execution
    ab = pim.time_spmm(result, with_energy=True)
    pb = time_spmm(ex, pim.config, mode="pb")
    spmv_cycles = time_spmv(ex, pim.config, mode="ab").cycles
    print(format_table(["metric", "value"], [
        ["matrix", f"{matrix.shape[0]}x{matrix.shape[1]}, "
                   f"nnz={matrix.nnz}"],
        ["rhs columns", num_rhs],
        ["tiles / rounds", f"{len(result.plan.tiles)} / {ex.num_rounds}"],
        ["banks used / imbalance", f"{ex.banks_used}/{ex.num_banks} / "
                                   f"{ex.imbalance:.2f}"],
        ["all-bank time", f"{ab.seconds * 1e6:.2f} us "
                          f"({ab.commands} commands)"],
        ["per-bank time", f"{pb.seconds * 1e6:.2f} us "
                          f"({pb.seconds / ab.seconds:.2f}x slower)"],
        ["cycles per rhs", f"{ab.cycles / num_rhs:.1f} "
                           f"(SpMV: {spmv_cycles}, amortisation "
                           f"{spmv_cycles * num_rhs / ab.cycles:.2f}x)"],
        ["energy", f"{ab.energy.total_joules * 1e6:.1f} uJ"],
    ], title=f"SpMM on pSyncPIM ({args.precision}, k={num_rhs})"))
    if want_attrib:
        attribution, perf = obs.attribute_spmm(ex, pim.config, mode="ab")
        report = obs.build_run_report(
            attribution, perf, label=f"spmm/{args.matrix}", kind="spmm",
            matrix=args.matrix, mode="ab", channels=ex.num_channels,
            strategy=args.strategy or "", precision=args.precision,
            config=pim.config,
            alu_operations=2 * ex.total_elements * num_rhs)
        print()
        print(obs.render_report(report))
    return 0


def _cmd_sptrsv(args) -> int:
    want_attrib = _resolve_obs_flags(args)
    matrix = _load_matrix(args)
    pim = PSyncPIM(num_cubes=args.cubes, channels=args.channels,
                   strategy=args.strategy)
    factors = pim.factorize(matrix)
    b = np.random.default_rng(args.seed).random(matrix.shape[0])
    rows = []
    attrib_reports = []
    for label, tri, lower in (("lower", factors.lower, True),
                              ("upper", factors.upper, False)):
        solve = pim.sptrsv(tri, b, lower=lower)
        report = pim.time_sptrsv(solve)
        residual = float(np.abs(tri.matvec(solve.x) - b).max())
        rows.append([label, tri.nnz, solve.execution.num_levels,
                     report.seconds * 1e6, f"{residual:.2e}"])
        if want_attrib:
            ex = solve.execution
            attribution, perf = obs.attribute_sptrsv(ex, pim.config)
            attrib_reports.append(obs.build_run_report(
                attribution, perf,
                label=f"sptrsv/{args.matrix}/{label}", kind="sptrsv",
                matrix=args.matrix, channels=ex.num_channels,
                strategy=args.strategy or "", config=pim.config,
                alu_operations=2 * ex.total_elements))
    print(format_table(["factor", "nnz", "levels", "time (us)",
                        "residual"], rows,
                       title="SpTRSV via ILDU on pSyncPIM"))
    for report in attrib_reports:
        print()
        print(obs.render_report(report))
    return 0


def _cmd_sweep(args) -> int:
    from .sweep import run_sweep, suite_jobs
    want_attrib = _resolve_obs_flags(args) or bool(args.attrib_out)
    matrices = (None if args.matrices is None
                else [name.strip() for name in args.matrices.split(",")
                      if name.strip()])
    jobs = suite_jobs(kernel=args.kernel, matrices=matrices,
                      scale=args.scale, precision=args.precision,
                      num_cubes=args.cubes, platform=args.platform,
                      mode=args.mode, with_energy=args.energy,
                      channels=args.channels, strategy=args.strategy,
                      rhs=args.rhs, attrib=want_attrib or None)
    result = run_sweep(jobs, workers=args.workers,
                       cache_dir=args.cache_dir,
                       use_cache=not args.no_cache,
                       batch=args.batch)
    kernel = args.kernel
    print(result.summary_table(
        title=f"sweep: {len(jobs)} {kernel} jobs over "
              f"{len(set(job.matrix for job in jobs))} matrices"))
    if want_attrib:
        reports = result.attrib_reports()
        if reports:
            print()
            print(obs.render_bundle_summary(reports))
        if args.attrib_out:
            path = obs.save_reports(args.attrib_out, reports)
            print(f"\nattrib: wrote {len(reports)} report(s) to {path}")
    return 0


def _cmd_tune(args) -> int:
    from .core import (make_strategy, plan_spmv, strategy_names,
                       time_spmv, tune_strategy)
    from .formats import matrices_for
    from .sweep import resolve_bench_scale
    scale = resolve_bench_scale() if args.scale is None else args.scale
    names = (matrices_for("spmv") if args.matrices is None
             else [n.strip() for n in args.matrices.split(",")
                   if n.strip()])
    config = default_system()
    strategies = list(strategy_names())
    totals = {name: 0.0 for name in strategies + ["auto"]}
    wins = {name: [0, 0, 0] for name in strategies[1:] + ["auto"]}
    rows = []
    start = time.perf_counter()
    for mat_name in names:
        matrix = generate(mat_name, scale=scale)
        cycles = {}
        for strat in strategies:
            plan = make_strategy(strat).partition(
                matrix, config, precision=args.precision, validate=False)
            _, _, execution = plan_spmv(
                matrix, config, precision=args.precision, plan=plan,
                validate=False, channels=args.channels)
            cycles[strat] = float(time_spmv(execution, config,
                                            mode=args.mode).cycles)
        tuned = tune_strategy(matrix, config, precision=args.precision,
                              channels=args.channels, mode=args.mode)
        cycles["auto"] = cycles[tuned.chosen]
        for strat, tally in wins.items():
            if cycles[strat] < cycles["paper"]:
                tally[0] += 1
            elif cycles[strat] == cycles["paper"]:
                tally[1] += 1
            else:
                tally[2] += 1
        for strat, value in cycles.items():
            totals[strat] += value
        rows.append([mat_name, matrix.nnz]
                    + [f"{cycles[s]:.3g}" for s in strategies]
                    + [tuned.chosen])
    wall = time.perf_counter() - start
    print(format_table(["matrix", "nnz"] + strategies + ["auto pick"],
                       rows,
                       title=f"modelled cycles per strategy "
                             f"(scale {scale}, {args.mode} mode)"))
    summary = [[strat, f"{tally[0]}/{tally[1]}/{tally[2]}",
                f"{totals['paper'] / totals[strat]:.3f}x"]
               for strat, tally in wins.items()]
    print()
    print(format_table(["strategy", "win/tie/loss vs paper",
                        "aggregate speedup"], summary,
                       title=f"suite aggregate over {len(names)} "
                             f"matrices ({wall:.1f} s)"))
    return 0


def _build_attrib_reports(args) -> dict:
    """Run the requested workloads and build their RunReport bundle."""
    from .config import default_system, resolve_channels, resolve_strategy
    from .core import plan_spmv
    from .core.sptrsv import ildu, run_sptrsv
    from .formats import matrices_for
    from .sweep import resolve_bench_scale
    config = default_system()
    channels = resolve_channels(args.channels)
    strategy = resolve_strategy(args.strategy)
    scale = resolve_bench_scale() if args.scale is None else args.scale
    if args.mtx:
        sources = [(args.mtx, read_matrix_market(args.mtx))]
    else:
        names = (matrices_for(args.kernel) if args.matrices is None
                 else [n.strip() for n in args.matrices.split(",")
                       if n.strip()])
        sources = [(name, generate(name, scale=scale)) for name in names]
    reports = {}
    for name, matrix in sources:
        if args.kernel == "spmv":
            _, _, execution = plan_spmv(
                matrix, config, precision=args.precision,
                validate=False, channels=channels, strategy=strategy)
            attribution, perf = obs.attribute_spmv(execution, config,
                                                   mode=args.mode)
            kind = "spmv"
        else:
            tri = ildu(matrix).lower
            b = np.random.default_rng(args.seed).random(tri.shape[0])
            execution = run_sptrsv(tri, b, config,
                                   precision=args.precision,
                                   channels=channels,
                                   strategy=strategy).execution
            attribution, perf = obs.attribute_sptrsv(execution, config)
            kind = "sptrsv"
        label = f"{kind}/{name}"
        reports[label] = obs.build_run_report(
            attribution, perf, label=label, kind=kind, matrix=name,
            mode=args.mode if kind == "spmv" else "ab",
            channels=channels, strategy=strategy,
            precision=args.precision, config=config,
            alu_operations=2 * execution.total_elements)
    return reports


def _cmd_attrib(args) -> int:
    reports = _build_attrib_reports(args)
    if args.quiet or len(reports) > 1:
        print(obs.render_bundle_summary(reports))
    if not args.quiet:
        for label in sorted(reports):
            print()
            print(obs.render_report(reports[label]))
    if args.out:
        path = obs.save_reports(args.out, reports)
        print(f"\nattrib: wrote {len(reports)} report(s) to {path}")
    if args.html:
        from pathlib import Path
        html_path = Path(args.html)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(obs.render_html(reports))
        print(f"attrib: wrote HTML report to {html_path}")
    return 0


def _cmd_diff(args) -> int:
    base = obs.load_reports(args.base)
    new = obs.load_reports(args.new)
    diff = obs.diff_reports(base, new)
    print(obs.render_diff(diff, top=args.top))
    if args.fail_above is not None and diff.total_base > 0:
        pct = 100.0 * diff.total_delta / diff.total_base
        if pct > args.fail_above:
            print(f"\ndiff: FAIL total cycles regressed {pct:+.2f}% "
                  f"(> {args.fail_above}%)", file=sys.stderr)
            return 1
    return 0


def _cmd_profile(args) -> int:
    path = args.path if args.path is not None else obs.default_dir()
    try:
        metrics = obs.load_metrics(path)
    except FileNotFoundError:
        print(f"error: no metrics at {path}; run a command with "
              f"PSYNCPIM_OBS=1 first", file=sys.stderr)
        return 1
    print(obs.render_profile(metrics, max_banks=args.banks))
    return 0


def _cmd_check(args) -> int:
    from .check import (check_trace, compare_golden, fuzz_batch,
                        golden_traces, update_golden)
    failed = False

    if args.update_golden:
        written = update_golden(args.golden_dir)
        for path in written:
            print(f"golden: wrote {path}")
    elif not args.skip_golden:
        problems = compare_golden(args.golden_dir)
        if problems:
            failed = True
            for problem in problems:
                print(f"golden: FAIL {problem}")
        else:
            print("golden: ok (all snapshots match exactly)")

    if not args.skip_protocol:
        for name, trace in golden_traces().items():
            violations = check_trace(trace)
            if violations:
                failed = True
                for v in violations[:5]:
                    print(f"protocol: FAIL {name}: {v}")
            else:
                print(f"protocol: ok {name} ({len(trace)} entries)")

    if args.fuzz > 0:
        from .config import resolve_batch
        mode = resolve_batch(args.batch)
        start = time.perf_counter()
        failures = fuzz_batch(range(args.seed, args.seed + args.fuzz),
                              group_size=args.group_size, batch=mode)
        wall = time.perf_counter() - start
        rate = args.fuzz / wall if wall > 0 else float("inf")
        if failures:
            failed = True
            for seed, message in failures:
                print(f"fuzz: FAIL seed {seed}: {message}")
        else:
            print(f"fuzz: ok ({args.fuzz} programs, seeds "
                  f"{args.seed}..{args.seed + args.fuzz - 1}, "
                  f"{wall:.2f} s, {rate:.1f} seeds/s, batch={mode})")

    print("check: FAILED" if failed else "check: all oracles passed")
    return 1 if failed else 0


def _cmd_app(args) -> int:
    from .apps import (GPUBackend, PIMBackend, bfs, connected_components,
                       pagerank, pbicgstab, pcg, sssp, triangle_count)
    matrix = _load_matrix(args)
    rng = np.random.default_rng(args.seed)

    def run(backend):
        if args.name == "bfs":
            return bfs(matrix, 0, backend)
        if args.name == "cc":
            return connected_components(matrix, backend)
        if args.name == "pr":
            return pagerank(matrix, backend)
        if args.name == "sssp":
            return sssp(matrix, 0, backend)
        if args.name == "tc":
            return triangle_count(matrix, backend)
        b = matrix.matvec(rng.random(matrix.shape[0]))
        solver = pcg if args.name == "pcg" else pbicgstab
        return solver(matrix, b, backend, tol=1e-9)

    gpu_run = run(GPUBackend(graphblast=args.name in
                             ("bfs", "cc", "pr", "sssp", "tc")))
    pim_run = run(PIMBackend())
    rows = [[cls, gpu_run.breakdown.get(cls, 0.0) * 1e6,
             pim_run.breakdown.get(cls, 0.0) * 1e6]
            for cls in ("spmv", "sptrsv", "vector", "spgemm")]
    rows.append(["total", gpu_run.total_seconds * 1e6,
                 pim_run.total_seconds * 1e6])
    print(format_table(["kernel class", "GPU (us)", "pSyncPIM (us)"],
                       rows,
                       title=f"{gpu_run.name}: {gpu_run.iterations} "
                             f"iterations, speedup "
                             f"{gpu_run.total_seconds / pim_run.total_seconds:.2f}x"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
