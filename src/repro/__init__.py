"""pSyncPIM: partially synchronous sparse matrix execution for all-bank
processing-in-memory architectures.

Reproduction of Baek, Hwang & Huh, ISCA 2024. The package layers:

* :mod:`repro.formats`  — sparse containers, Matrix Market I/O, Table IX.
* :mod:`repro.dram`     — HBM2 command-level timing + energy simulator.
* :mod:`repro.isa`      — the 15-instruction PIM ISA and assembler.
* :mod:`repro.pim`      — processing units and the all-bank engine.
* :mod:`repro.kernels`  — PIM kernel programs and drivers (Table III).
* :mod:`repro.core`     — partitioning, distribution, SpMV/SpTRSV, timing.
* :mod:`repro.baselines` — GPU / SpaceA / SpGEMM-accelerator models.
* :mod:`repro.apps`     — the seven Table II applications.
* :mod:`repro.analysis` — area model and report rendering.

Entry point: :class:`PSyncPIM`.
"""

from .config import (HBM2Config, ProcessingUnitConfig, SystemConfig,
                     default_system, gddr6_aim_system)
from .core import PSyncPIM
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["PSyncPIM", "HBM2Config", "ProcessingUnitConfig",
           "SystemConfig", "default_system", "gddr6_aim_system",
           "ReproError", "__version__"]
